package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("//item[//keyword]")
	if tr.ID() == 0 {
		t.Fatal("trace ID should be nonzero")
	}
	if got := tr.IDString(); len(got) != 16 {
		t.Fatalf("IDString %q: want 16 hex chars", got)
	}

	parse := tr.StartSpan("serve.parse")
	parse.End()
	plan := tr.StartSpan("eval.plan")
	inner := plan.Child("eval.memo")
	inner.End()
	plan.End()
	tr.AddCounter("embeddings", 7)
	tr.AddCounter("embeddings", 3)
	tr.AddCounter("nothing", 0) // zero increments are dropped
	tr.Finish()

	s := tr.Snapshot()
	if s.Name != "//item[//keyword]" {
		t.Errorf("snapshot name = %q", s.Name)
	}
	if len(s.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(s.Spans))
	}
	byName := make(map[string]SpanRecord)
	for _, sp := range s.Spans {
		byName[sp.Name] = sp
	}
	if byName["serve.parse"].ParentID != 0 || byName["eval.plan"].ParentID != 0 {
		t.Error("root-level spans should have ParentID 0")
	}
	if got, want := byName["eval.memo"].ParentID, byName["eval.plan"].SpanID; got != want {
		t.Errorf("child span parent = %d, want %d", got, want)
	}
	if s.Counters["embeddings"] != 10 {
		t.Errorf("counter = %d, want 10", s.Counters["embeddings"])
	}
	if _, ok := s.Counters["nothing"]; ok {
		t.Error("zero-increment counter should not be recorded")
	}
	if s.TotalSeconds <= 0 {
		t.Errorf("total = %v, want > 0", s.TotalSeconds)
	}

	// Snapshots must serialize: the flight recorder ships them as JSON.
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot marshal: %v", err)
	}
}

func TestTraceFinishFirstCallWins(t *testing.T) {
	tr := NewTrace("q")
	first := tr.Finish()
	time.Sleep(time.Millisecond)
	if second := tr.Finish(); second != first {
		t.Errorf("second Finish = %v, want the first call's %v", second, first)
	}
}

// TestTraceNil pins the disabled path: every method of a nil *Trace (and of
// the inert spans it hands out) is a no-op, so instrumented code never
// branches on "is tracing on".
func TestTraceNil(t *testing.T) {
	var tr *Trace
	if tr.ID() != 0 || tr.IDString() != "" {
		t.Error("nil trace should have zero ID")
	}
	sp := tr.StartSpan("eval.plan")
	if sp.End() != 0 {
		t.Error("inert span End should return 0")
	}
	child := sp.Child("eval.memo")
	if child.End() != 0 {
		t.Error("inert child End should return 0")
	}
	tr.AddCounter("x", 1)
	if tr.Finish() != 0 {
		t.Error("nil Finish should return 0")
	}
	if s := tr.Snapshot(); s.TraceID != "" || len(s.Spans) != 0 {
		t.Errorf("nil snapshot = %+v, want zero value", s)
	}
}

func TestTraceContext(t *testing.T) {
	if TraceFrom(nil) != nil {
		t.Error("TraceFrom(nil ctx) should be nil")
	}
	if TraceFrom(context.Background()) != nil {
		t.Error("TraceFrom on a bare context should be nil")
	}
	tr := NewTrace("q")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Errorf("TraceFrom = %p, want %p", got, tr)
	}
	// Attaching a nil trace leaves the context untouched.
	base := context.Background()
	if got := ContextWithTrace(base, nil); got != base {
		t.Error("ContextWithTrace(nil) should return the context unchanged")
	}
}

func TestTraceIDsDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		id := NewTrace("q").ID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %x", id)
		}
		seen[id] = true
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("q")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := tr.StartSpan("eval.memo")
				tr.AddCounter("work", 1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	s := tr.Snapshot()
	if len(s.Spans) != 800 {
		t.Errorf("got %d spans, want 800", len(s.Spans))
	}
	if s.Counters["work"] != 800 {
		t.Errorf("counter = %d, want 800", s.Counters["work"])
	}
	ids := make(map[uint64]bool)
	for _, sp := range s.Spans {
		if ids[sp.SpanID] {
			t.Fatalf("duplicate span ID %d", sp.SpanID)
		}
		ids[sp.SpanID] = true
	}
}

// finishedTrace fabricates a trace whose total is already stamped, so flight
// recorder ordering tests are deterministic.
func finishedTrace(name string, total time.Duration) *Trace {
	tr := NewTrace(name)
	tr.total = total
	tr.finished = true
	return tr
}

func TestFlightRecorderKeepsSlowest(t *testing.T) {
	rec := NewFlightRecorder(3)
	if rec.Threshold() != 0 {
		t.Error("threshold should be 0 while under capacity")
	}
	durations := []time.Duration{
		5 * time.Millisecond, 50 * time.Millisecond, 10 * time.Millisecond,
		100 * time.Millisecond, 20 * time.Millisecond,
	}
	for i, d := range durations {
		retained := rec.Record(finishedTrace(strings.Repeat("q", i+1), d))
		// Only the 20ms trace arrives after capacity fills with strictly
		// slower entries (100, 50, 10) — it evicts the 10ms one.
		if !retained {
			t.Errorf("trace %d (%v) should have been retained", i, d)
		}
	}
	// A trace faster than the current floor is rejected outright.
	if rec.Record(finishedTrace("fast", time.Millisecond)) {
		t.Error("1ms trace should not displace the retained set")
	}
	got := rec.Slowest()
	if len(got) != 3 {
		t.Fatalf("retained %d traces, want 3", len(got))
	}
	wantOrder := []float64{0.1, 0.05, 0.02}
	for i, snap := range got {
		if snap.TotalSeconds != wantOrder[i] {
			t.Errorf("slot %d = %gs, want %gs", i, snap.TotalSeconds, wantOrder[i])
		}
	}
	if th := rec.Threshold(); th != 20*time.Millisecond {
		t.Errorf("threshold = %v, want 20ms", th)
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var rec *FlightRecorder
	if rec.Record(finishedTrace("q", time.Second)) {
		t.Error("nil recorder should not retain")
	}
	if rec.Slowest() != nil || rec.Threshold() != 0 {
		t.Error("nil recorder should report empty state")
	}
	live := NewFlightRecorder(2)
	if live.Record(nil) {
		t.Error("nil trace should not be retained")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	rec := NewFlightRecorder(8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rec.Record(finishedTrace("q", time.Duration(base*50+j)*time.Millisecond))
				rec.Slowest()
				rec.Threshold()
			}
		}(i)
	}
	wg.Wait()
	got := rec.Slowest()
	if len(got) != 8 {
		t.Fatalf("retained %d, want 8", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].TotalSeconds > got[i-1].TotalSeconds {
			t.Fatalf("retained traces out of order at %d: %v then %v", i, got[i-1].TotalSeconds, got[i].TotalSeconds)
		}
	}
}
