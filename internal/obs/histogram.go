package obs

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout: values are bucketed by the floor of their base-2
// logarithm. Exponents below histMinExp collapse into the first finite
// bucket and exponents at or above histMaxExp into the last; bucket 0 is
// reserved for zero and negative observations. The range 2^-30 .. 2^40
// covers everything the system observes — sub-nanosecond span fractions up
// to trillions — in 72 buckets.
const (
	histMinExp     = -30
	histMaxExp     = 40
	histNumBuckets = histMaxExp - histMinExp + 2 // + the zero/negative bucket
)

// Histogram is a fixed-layout log-scale histogram of float64 observations.
// Observe is lock-free; Sum, Min, and Max are maintained with CAS loops so
// concurrent writers never lose updates.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // math.Float64bits of the running min; valid when count > 0
	maxBits atomic.Uint64
	buckets [histNumBuckets]atomic.Int64
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	e := math.Ilogb(v)
	switch {
	case e < histMinExp:
		e = histMinExp
	case e > histMaxExp:
		e = histMaxExp
	}
	return e - histMinExp + 1
}

// bucketBounds returns the half-open value range [lo, hi) covered by bucket
// i. The bounds are kept finite so snapshots survive JSON encoding: bucket
// 0 (zero and negative observations) reports [0, 0), and the top bucket's
// upper bound is MaxFloat64 rather than +Inf.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	e := i - 1 + histMinExp
	lo = math.Ldexp(1, e)
	if i == histNumBuckets-1 {
		return lo, math.MaxFloat64
	}
	return lo, math.Ldexp(1, e+1)
}

// newHistogram returns a histogram with min/max primed to +/-Inf so the
// Observe CAS loops need no "unset" sentinel.
func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.count.Add(1)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Mean returns the arithmetic mean of the observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the p-quantile (0 <= p <= 1) of the observations by
// linear interpolation inside the log-2 bucket holding the target rank.
// Bucket bounds are clamped to the observed Min and Max, so a histogram
// with a single observation reports that value for every p, and the open
// top bucket never inflates the estimate past the largest value actually
// seen. Returns 0 when the histogram is empty; p is clamped to [0, 1].
func (h *Histogram) Quantile(p float64) float64 {
	n := h.count.Load()
	if n == 0 || math.IsNaN(p) {
		return 0
	}
	counts := make([]int64, histNumBuckets)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return quantileFromBuckets(p, n, h.Min(), h.Max(), func(i int) (lo, hi float64, c int64) {
		lo, hi = bucketBounds(i)
		return lo, hi, counts[i]
	}, histNumBuckets)
}

// quantileFromBuckets walks numBuckets buckets (via the accessor) in value
// order and interpolates the p-quantile of n observations whose global
// extrema are min and max. Shared by the live Histogram and the serialized
// HistogramSnapshot so both report identical percentiles.
func quantileFromBuckets(p float64, n int64, min, max float64, bucket func(i int) (lo, hi float64, c int64), numBuckets int) float64 {
	if p <= 0 {
		return min
	}
	if p >= 1 {
		return max
	}
	rank := p * float64(n) // target cumulative count, in (0, n)
	var cum int64
	for i := 0; i < numBuckets; i++ {
		lo, hi, c := bucket(i)
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		// Clamp the bucket's nominal bounds to the observed extrema:
		// the first and last non-empty buckets are only partially
		// covered, and bucket 0 (zero/negative observations) has the
		// degenerate nominal range [0, 0).
		if lo < min {
			lo = min
		}
		if hi > max {
			hi = max
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return max
}
