package obs

import (
	"runtime"
	"sync"
	"time"
)

// DefaultRuntimeInterval is the sampling period used when a
// RuntimeCollector is started with a non-positive interval. One second is
// frequent enough that a 60-second metrics window holds dozens of samples,
// and cheap enough (one ReadMemStats stop-the-world per tick) to leave on
// in production.
const DefaultRuntimeInterval = time.Second

// RuntimeCollector samples Go runtime health on a ticker into a registry:
//
//	runtime.goroutines              gauge     live goroutine count
//	runtime.gomaxprocs              gauge     scheduler parallelism
//	runtime.heap.alloc_bytes        gauge     live heap bytes
//	runtime.heap.objects            gauge     live heap objects
//	runtime.mem.sys_bytes           gauge     total bytes from the OS
//	runtime.gc.cycles               counter   GC cycles since Start
//	runtime.gc.pause_seconds        windowed  stop-the-world pause durations
//	runtime.sched.latency_seconds   windowed  timer-wakeup lateness proxy
//
// The last family is an overload canary: the collector sleeps for its
// interval and records how late the wake-up actually was. On an idle
// process the lateness is microseconds; when the run queues are saturated
// (the exact condition admission control exists to survive), wake-ups slip
// by milliseconds, and the windowed p99 shows it before request latency
// collapses.
//
// The collector lives entirely inside package obs — the telemetry boundary
// the tslint nondet analyzer cuts — so its clock reads and its sampling
// goroutine can never reach a fingerprint path.
type RuntimeCollector struct {
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once

	gGoroutines  *Gauge
	gProcs       *Gauge
	gHeapAlloc   *Gauge
	gHeapObjects *Gauge
	gSys         *Gauge
	cGC          *Counter
	wPause       *WindowedHistogram
	wSched       *WindowedHistogram

	// lastNumGC is the GC cycle count as of the previous sample; only the
	// sampling goroutine (and Stop, after it exits) touches it.
	lastNumGC uint32
}

// StartRuntimeCollector registers the runtime.* metric families on r (nil
// means Default) and starts a goroutine sampling them every interval
// (non-positive means DefaultRuntimeInterval). Gauges are primed with one
// synchronous sample before returning, so a scrape immediately after Start
// already sees the process. Call Stop to end collection.
func StartRuntimeCollector(r *Registry, interval time.Duration) *RuntimeCollector {
	r = Or(r)
	if interval <= 0 {
		interval = DefaultRuntimeInterval
	}
	c := &RuntimeCollector{
		interval:     interval,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		gGoroutines:  r.Gauge("runtime.goroutines"),
		gProcs:       r.Gauge("runtime.gomaxprocs"),
		gHeapAlloc:   r.Gauge("runtime.heap.alloc_bytes"),
		gHeapObjects: r.Gauge("runtime.heap.objects"),
		gSys:         r.Gauge("runtime.mem.sys_bytes"),
		cGC:          r.Counter("runtime.gc.cycles"),
		wPause:       r.Windowed("runtime.gc.pause_seconds"),
		wSched:       r.Windowed("runtime.sched.latency_seconds"),
	}
	// Baseline the GC cycle count so runtime.gc.cycles counts cycles during
	// collection, not process history.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.lastNumGC = ms.NumGC
	c.sample()
	go c.run()
	return c
}

// Stop ends collection, waits for the sampling goroutine to exit, and takes
// one final sample so short-lived runs (a benchmark leg, a test) still
// publish their last state. Stop is idempotent, so callers can pair a defer
// with an explicit early Stop.
func (c *RuntimeCollector) Stop() {
	c.once.Do(func() {
		close(c.stop)
		<-c.done
		c.sample()
	})
}

func (c *RuntimeCollector) run() {
	defer close(c.done)
	for {
		t0 := time.Now()
		timer := time.NewTimer(c.interval)
		select {
		case <-c.stop:
			timer.Stop()
			return
		case <-timer.C:
			// Scheduling-latency proxy: how much later than requested the
			// timer actually fired. Saturated run queues show up here.
			late := time.Since(t0) - c.interval
			if late < 0 {
				late = 0
			}
			c.wSched.Observe(late.Seconds())
			c.sample()
		}
	}
}

// sample reads the runtime counters into the registered metrics.
func (c *RuntimeCollector) sample() {
	c.gGoroutines.Set(int64(runtime.NumGoroutine()))
	c.gProcs.Set(int64(runtime.GOMAXPROCS(0)))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.gHeapAlloc.Set(int64(ms.HeapAlloc))
	c.gHeapObjects.Set(int64(ms.HeapObjects))
	c.gSys.Set(int64(ms.Sys))
	if n := ms.NumGC - c.lastNumGC; n > 0 {
		c.cGC.Add(int64(n))
		// Replay the pauses of the new cycles out of the runtime's fixed
		// 256-entry ring (most recent at (NumGC+255)%256).
		if n > 256 {
			n = 256
		}
		for i := uint32(0); i < n; i++ {
			pause := ms.PauseNs[(ms.NumGC-i+255)%256]
			c.wPause.Observe(float64(pause) / 1e9)
		}
		c.lastNumGC = ms.NumGC
	}
}
