package obs

import (
	"sync"
	"time"
)

// FlightRecorder retains the K slowest request traces seen so far — a
// bounded flight log of the worst queries, each with its query text, phase
// breakdown, and per-request counters. It answers the question logs and
// aggregate histograms cannot: "what exactly were the slow requests doing".
//
// Record is cheap relative to the requests it records (one mutex hold and,
// for the common fast request, a single threshold comparison against the
// current K-th worst duration).
type FlightRecorder struct {
	mu     sync.Mutex
	max    int
	traces []TraceSnapshot // sorted by TotalSeconds, slowest first
}

// DefaultFlightRecorderSize is the trace retention bound used when a
// FlightRecorder is constructed with a non-positive capacity.
const DefaultFlightRecorderSize = 32

// NewFlightRecorder builds a recorder retaining the k slowest traces
// (DefaultFlightRecorderSize when k <= 0).
func NewFlightRecorder(k int) *FlightRecorder {
	if k <= 0 {
		k = DefaultFlightRecorderSize
	}
	return &FlightRecorder{max: k}
}

// Record offers a finished trace to the recorder and reports whether it was
// retained (it ranked among the K slowest seen so far). Nil traces are
// ignored.
func (f *FlightRecorder) Record(t *Trace) bool {
	if f == nil || t == nil {
		return false
	}
	total := t.Finish().Seconds()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.traces) == f.max && total <= f.traces[len(f.traces)-1].TotalSeconds {
		return false
	}
	snap := t.Snapshot()
	// Insert in descending-duration order; drop the fastest retained trace
	// when over capacity.
	i := len(f.traces)
	for i > 0 && f.traces[i-1].TotalSeconds < snap.TotalSeconds {
		i--
	}
	f.traces = append(f.traces, TraceSnapshot{})
	copy(f.traces[i+1:], f.traces[i:])
	f.traces[i] = snap
	if len(f.traces) > f.max {
		f.traces = f.traces[:f.max]
	}
	return true
}

// Slowest returns the retained traces, slowest first.
func (f *FlightRecorder) Slowest() []TraceSnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]TraceSnapshot(nil), f.traces...)
}

// Threshold returns the duration a trace must exceed to be retained right
// now: zero while the recorder has spare capacity, the fastest retained
// trace's total otherwise.
func (f *FlightRecorder) Threshold() time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.traces) < f.max {
		return 0
	}
	return time.Duration(f.traces[len(f.traces)-1].TotalSeconds * float64(time.Second))
}
