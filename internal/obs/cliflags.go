package obs

import (
	"flag"
	"fmt"
	"os"
)

// CLIFlags bundles the observability flags shared by every cmd/ binary:
//
//	-metrics out.json   write a JSON snapshot of the Default registry
//	-metrics-text       dump the snapshot as flat text to stderr
//	-cpuprofile f.prof  write a runtime/pprof CPU profile
//	-memprofile f.prof  write a heap profile at exit
//
// Usage: register on the binary's FlagSet before flag.Parse, call Start
// right after it, and Finish once the work is done.
type CLIFlags struct {
	metrics     *string
	metricsText *bool
	cpuProfile  *string
	memProfile  *string

	stopCPU func() error
}

// RegisterCLIFlags installs the shared observability flags on fs.
func RegisterCLIFlags(fs *flag.FlagSet) *CLIFlags {
	return &CLIFlags{
		metrics:     fs.String("metrics", "", "write a JSON metrics snapshot to this file at exit"),
		metricsText: fs.Bool("metrics-text", false, "dump the metrics snapshot as text to stderr at exit"),
		cpuProfile:  fs.String("cpuprofile", "", "write a CPU profile to this file"),
		memProfile:  fs.String("memprofile", "", "write a heap profile to this file at exit"),
	}
}

// Start begins CPU profiling when requested. Call after flag parsing.
func (f *CLIFlags) Start() error {
	if *f.cpuProfile == "" {
		return nil
	}
	stop, err := StartCPUProfile(*f.cpuProfile)
	if err != nil {
		return err
	}
	f.stopCPU = stop
	return nil
}

// Finish stops CPU profiling and writes the heap profile and metrics
// snapshot as requested. Call once at the end of main.
func (f *CLIFlags) Finish() error {
	if f.stopCPU != nil {
		if err := f.stopCPU(); err != nil {
			return err
		}
		f.stopCPU = nil
	}
	if *f.memProfile != "" {
		if err := WriteHeapProfile(*f.memProfile); err != nil {
			return err
		}
	}
	if *f.metrics != "" {
		if err := Default().WriteJSONFile(*f.metrics); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics: %s\n", *f.metrics)
	}
	if *f.metricsText {
		if err := Default().WriteText(os.Stderr); err != nil {
			return err
		}
		// Surface bad registrations where the snapshot is read, not only
		// via the NameErrors API: a misnamed metric is an observability
		// bug users should see at run time.
		for _, nameErr := range Default().NameErrors() {
			fmt.Fprintf(os.Stderr, "metric name error: %v\n", nameErr)
		}
	}
	return nil
}
