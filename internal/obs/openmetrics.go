package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// OpenMetricsContentType is the Content-Type the /metrics handler serves.
// The output is simultaneously valid Prometheus text format (the subset we
// emit is shared), so classic scrapers consume it unchanged.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics writes the registry's current state in OpenMetrics text
// exposition format, the lingua franca of Prometheus-compatible scrapers:
//
//   - counters become "<name>_total" counter samples;
//   - gauges become plain gauge samples;
//   - timers become summaries: "<name>_seconds_count" / "<name>_seconds_sum",
//     with the extrema as companion gauges;
//   - histograms become classic cumulative-bucket histograms with "le"
//     labels derived from the log-2 bucket upper bounds;
//   - windowed histograms additionally export "<name>_p50" / "<name>_p99"
//     gauges over the merged window and a "<name>_per_sec" observation rate,
//     so a scrape sees the last-window tail without needing PromQL.
//
// Metric names map dot-separated registry names onto the Prometheus grammar
// by flattening dots to underscores. Families are emitted in sorted name
// order, and the stream ends with the OpenMetrics "# EOF" terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	s := r.Snapshot()
	ew := &errWriter{w: w}
	for _, n := range sortedNames(s.Counters) {
		fam := promName(n)
		ew.printf("# TYPE %s counter\n%s_total %d\n", fam, fam, s.Counters[n])
	}
	for _, n := range sortedNames(s.Gauges) {
		fam := promName(n)
		ew.printf("# TYPE %s gauge\n%s %d\n", fam, fam, s.Gauges[n])
	}
	for _, n := range sortedNames(s.Timers) {
		t := s.Timers[n]
		fam := promName(n) + "_seconds"
		ew.printf("# TYPE %s summary\n%s_count %d\n%s_sum %s\n", fam, fam, t.Count, fam, promFloat(t.TotalSeconds))
		ew.printf("# TYPE %s_min gauge\n%s_min %s\n", fam, fam, promFloat(t.MinSeconds))
		ew.printf("# TYPE %s_max gauge\n%s_max %s\n", fam, fam, promFloat(t.MaxSeconds))
	}
	for _, n := range sortedNames(s.Histograms) {
		writeHistogramFamily(ew, promName(n), s.Histograms[n])
	}
	for _, n := range sortedNames(s.Windows) {
		ws := s.Windows[n]
		fam := promName(n)
		writeHistogramFamily(ew, fam, ws.HistogramSnapshot)
		ew.printf("# TYPE %s_window_seconds gauge\n%s_window_seconds %s\n", fam, fam, promFloat(ws.WindowSeconds))
		// An empty window has no quantiles: Quantile over zero observations
		// returns NaN, and "NaN" is not a sample value strict OpenMetrics
		// parsers accept. Omit the _p50/_p99 families entirely on a cold
		// scrape (absent-metric is the Prometheus idiom for "no data yet")
		// and drop any non-finite sample defensively.
		if ws.Count > 0 {
			writeFiniteGauge(ew, fam+"_p50", ws.Quantile(0.50))
			writeFiniteGauge(ew, fam+"_p99", ws.Quantile(0.99))
		}
		rate := 0.0
		if ws.WindowSeconds > 0 {
			rate = float64(ws.Count) / ws.WindowSeconds
		}
		ew.printf("# TYPE %s_per_sec gauge\n%s_per_sec %s\n", fam, fam, promFloat(rate))
	}
	ew.printf("# EOF\n")
	return ew.err
}

// writeHistogramFamily emits one classic Prometheus histogram: cumulative
// buckets keyed by upper bound, the mandatory "+Inf" bucket, sum, and count.
func writeHistogramFamily(ew *errWriter, fam string, h HistogramSnapshot) {
	ew.printf("# TYPE %s histogram\n", fam)
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		ew.printf("%s_bucket{le=\"%s\"} %d\n", fam, promFloat(b.Hi), cum)
	}
	ew.printf("%s_bucket{le=\"+Inf\"} %d\n", fam, h.Count)
	ew.printf("%s_sum %s\n%s_count %d\n", fam, promFloat(h.Sum), fam, h.Count)
}

// writeFiniteGauge emits a single-sample gauge family, skipping it (TYPE
// line included) when the value is NaN or infinite — %g would render them
// as "NaN"/"+Inf", which strict scrapers reject.
func writeFiniteGauge(ew *errWriter, fam string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	ew.printf("# TYPE %s gauge\n%s %s\n", fam, fam, promFloat(v))
}

// promName flattens a dotted registry name onto the Prometheus name grammar.
func promName(name string) string {
	return strings.ReplaceAll(name, ".", "_")
}

// promFloat renders a float sample value; the %g forms OpenMetrics accepts.
func promFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// errWriter latches the first write error so the exposition loop stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}
