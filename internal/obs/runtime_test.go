package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeCollectorSamples(t *testing.T) {
	reg := NewRegistry()
	c := StartRuntimeCollector(reg, 5*time.Millisecond)
	// Force at least one GC cycle while the collector is live, and give the
	// ticker a few periods to fire.
	runtime.GC()
	time.Sleep(30 * time.Millisecond)
	c.Stop()

	snap := reg.Snapshot()
	if g := snap.Gauges["runtime.goroutines"]; g <= 0 {
		t.Errorf("runtime.goroutines = %d, want > 0", g)
	}
	if g := snap.Gauges["runtime.gomaxprocs"]; g != int64(runtime.GOMAXPROCS(0)) {
		t.Errorf("runtime.gomaxprocs = %d, want %d", g, runtime.GOMAXPROCS(0))
	}
	if g := snap.Gauges["runtime.heap.alloc_bytes"]; g <= 0 {
		t.Errorf("runtime.heap.alloc_bytes = %d, want > 0", g)
	}
	if g := snap.Gauges["runtime.mem.sys_bytes"]; g <= 0 {
		t.Errorf("runtime.mem.sys_bytes = %d, want > 0", g)
	}
	if n := snap.Counters["runtime.gc.cycles"]; n < 1 {
		t.Errorf("runtime.gc.cycles = %d, want >= 1 after a forced GC", n)
	}
	if w := snap.Windows["runtime.gc.pause_seconds"]; w.Count < 1 {
		t.Errorf("runtime.gc.pause_seconds count = %d, want >= 1", w.Count)
	}
	if w, ok := snap.Windows["runtime.sched.latency_seconds"]; !ok || w.Count < 1 {
		t.Errorf("runtime.sched.latency_seconds missing or empty (count %d)", w.Count)
	}
	if errs := reg.NameErrors(); len(errs) != 0 {
		t.Errorf("runtime families tripped name validation: %v", errs)
	}
}

func TestRuntimeCollectorOpenMetrics(t *testing.T) {
	reg := NewRegistry()
	c := StartRuntimeCollector(reg, time.Hour) // only the priming + Stop samples
	// Force a GC cycle so the pause window has real observations; the sched
	// window stays empty (the hour ticker never fires), which must suppress
	// its quantile families rather than expose NaN.
	runtime.GC()
	c.Stop()
	var b strings.Builder
	if err := reg.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		"runtime_goroutines ",
		"runtime_heap_alloc_bytes ",
		"runtime_gc_cycles_total ",
		"runtime_gc_pause_seconds_p99 ",
		"runtime_sched_latency_seconds_window_seconds ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(body, "runtime_sched_latency_seconds_p99") {
		t.Error("empty sched-latency window must omit its p99 family")
	}
	if strings.Contains(body, "NaN") {
		t.Errorf("exposition leaks NaN:\n%s", body)
	}
}

func TestQueueMetrics(t *testing.T) {
	reg := NewRegistry()
	q := NewQueueMetrics(reg, "serve.admission")
	q.Enter()
	q.Enter()
	if d := q.Depth.Value(); d != 2 {
		t.Errorf("depth after two enters = %d, want 2", d)
	}
	q.Exit(3 * time.Millisecond)
	q.Exit(5 * time.Millisecond)
	snap := reg.Snapshot()
	if d := snap.Gauges["serve.admission.queue_depth"]; d != 0 {
		t.Errorf("depth after balanced exits = %d, want 0", d)
	}
	w := snap.Windows["serve.admission.queue_wait_seconds"]
	if w.Count != 2 {
		t.Errorf("wait observations = %d, want 2", w.Count)
	}
	if w.Max < 0.004 || w.Max > 0.006 {
		t.Errorf("wait max = %g, want ~0.005", w.Max)
	}
	if errs := reg.NameErrors(); len(errs) != 0 {
		t.Errorf("queue families tripped name validation: %v", errs)
	}
}

func TestTraceLabels(t *testing.T) {
	var nilTrace *Trace
	nilTrace.SetLabel("dataset", "x") // must not panic
	if got := nilTrace.Label("dataset"); got != "" {
		t.Errorf("nil trace label = %q", got)
	}

	tr := NewTrace("//a//b")
	tr.SetLabel("dataset", "imdb")
	tr.SetLabel("dataset", "xmark") // overwrite wins
	tr.SetLabel("shed", "queue_full")
	if got := tr.Label("dataset"); got != "xmark" {
		t.Errorf("label = %q, want xmark", got)
	}
	snap := tr.Snapshot()
	if snap.Labels["dataset"] != "xmark" || snap.Labels["shed"] != "queue_full" {
		t.Errorf("snapshot labels = %v", snap.Labels)
	}
}
