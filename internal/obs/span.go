package obs

import (
	"sync/atomic"
	"time"
)

// Timer aggregates the durations of a named phase: invocation count, total,
// and extrema, all in nanoseconds. Timers are fed by Spans.
type Timer struct {
	count   atomic.Int64
	totalNS atomic.Int64
	minNS   atomic.Int64 // 0 means unset; durations of 0ns are recorded as 1ns
	maxNS   atomic.Int64
}

// record adds one completed phase duration.
func (t *Timer) record(d time.Duration) {
	ns := int64(d)
	if ns <= 0 {
		ns = 1
	}
	t.count.Add(1)
	t.totalNS.Add(ns)
	for {
		old := t.minNS.Load()
		if old != 0 && ns >= old {
			break
		}
		if t.minNS.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := t.maxNS.Load()
		if ns <= old {
			break
		}
		if t.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the number of recorded phase executions.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the cumulative duration across executions.
func (t *Timer) Total() time.Duration { return time.Duration(t.totalNS.Load()) }

// Min returns the shortest recorded execution (0 when none).
func (t *Timer) Min() time.Duration { return time.Duration(t.minNS.Load()) }

// Max returns the longest recorded execution (0 when none).
func (t *Timer) Max() time.Duration { return time.Duration(t.maxNS.Load()) }

// Span is an in-flight measurement of one named phase. Obtain one with
// StartSpan and finish it with End (or EndAt for pre-taken timestamps);
// the elapsed time is folded into the phase's Timer.
type Span struct {
	timer *Timer
	start time.Time
}

// StartSpan begins timing the named phase against registry r.
func (r *Registry) StartSpan(name string) Span {
	return Span{timer: r.Timer(name), start: time.Now()}
}

// StartSpan begins timing the named phase against the Default registry.
func StartSpan(name string) Span {
	return defaultRegistry.StartSpan(name)
}

// End finishes the span and returns the measured duration. A zero Span is
// a no-op, so spans can be threaded through optionally instrumented paths.
func (s Span) End() time.Duration {
	if s.timer == nil {
		return 0
	}
	d := time.Since(s.start)
	s.timer.record(d)
	return d
}

// Observe folds an externally measured duration into the named phase timer,
// for call sites that already track their own clocks.
func (r *Registry) Observe(name string, d time.Duration) {
	r.Timer(name).record(d)
}
