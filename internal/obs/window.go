package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Windowed-histogram defaults: a 60-second sliding window resolved into
// twelve 5-second ring slots. Percentiles read from the merged window are
// therefore "the last ~60s", refreshed at 5s granularity.
const (
	DefaultWindow      = 60 * time.Second
	defaultWindowSlots = 12
)

// WindowedHistogram is a log-scale histogram of the recent past: a ring of
// fixed-duration slots, each an independent Histogram, with expired slots
// lazily recycled as the clock advances. Observe is as cheap as a plain
// Histogram.Observe plus one atomic period check; Merged folds the live
// slots into a single HistogramSnapshot, so p50/p99 over the window reuse
// the same quantile interpolation as cumulative histograms.
//
// Unlike the cumulative Histogram, a WindowedHistogram answers "what are
// users experiencing right now" rather than "what has this process ever
// seen" — the distinction the serving daemon's /metrics endpoint exists to
// surface.
type WindowedHistogram struct {
	slotDur int64 // nanoseconds per ring slot
	slots   []windowSlot

	// nowNanos is the clock, injectable by tests to drive slot rotation
	// deterministically; nil means time.Now().UnixNano.
	nowNanos func() int64
}

type windowSlot struct {
	mu     sync.Mutex
	period atomic.Int64              // slotDur-quantized timestamp this slot currently holds
	h      atomic.Pointer[Histogram] // observations of that period
	_      [5]uint64                 // keep neighboring slots off one cache line
}

// NewWindowedHistogram builds a windowed histogram covering the given span
// with the given ring resolution. window <= 0 selects DefaultWindow;
// slots <= 0 selects the default resolution.
func NewWindowedHistogram(window time.Duration, slots int) *WindowedHistogram {
	if window <= 0 {
		window = DefaultWindow
	}
	if slots <= 0 {
		slots = defaultWindowSlots
	}
	w := &WindowedHistogram{
		slotDur: int64(window) / int64(slots),
		slots:   make([]windowSlot, slots),
	}
	if w.slotDur <= 0 {
		w.slotDur = 1
	}
	for i := range w.slots {
		w.slots[i].period.Store(-1)
		w.slots[i].h.Store(newHistogram())
	}
	return w
}

// Window returns the time span the merged view covers.
func (w *WindowedHistogram) Window() time.Duration {
	return time.Duration(w.slotDur * int64(len(w.slots)))
}

func (w *WindowedHistogram) now() int64 {
	if w.nowNanos != nil {
		return w.nowNanos()
	}
	return time.Now().UnixNano()
}

// slotFor returns the ring slot for period p, recycled for p if it still
// holds an expired period. Rotation takes the slot mutex, but only on the
// first observation of each (slot, period) — at most once per slot duration.
func (w *WindowedHistogram) slotFor(p int64) *windowSlot {
	s := &w.slots[int(p%int64(len(w.slots)))]
	if s.period.Load() != p {
		s.mu.Lock()
		if s.period.Load() != p {
			s.h.Store(newHistogram())
			s.period.Store(p)
		}
		s.mu.Unlock()
	}
	return s
}

// Observe records one value into the current slot.
func (w *WindowedHistogram) Observe(v float64) {
	p := w.now() / w.slotDur
	w.slotFor(p).h.Load().Observe(v)
}

// Merged folds every slot still inside the window into one snapshot. Slots
// whose period has fallen out of the window are skipped (they are recycled
// lazily, on their next observation), so a burst followed by silence ages
// out of the merged view on schedule.
func (w *WindowedHistogram) Merged() HistogramSnapshot {
	now := w.now() / w.slotDur
	oldest := now - int64(len(w.slots)) + 1
	var counts [histNumBuckets]int64
	out := HistogramSnapshot{}
	first := true
	for i := range w.slots {
		s := &w.slots[i]
		p := s.period.Load()
		if p < oldest || p > now {
			continue
		}
		h := s.h.Load()
		n := h.Count()
		if n == 0 {
			continue
		}
		out.Count += n
		out.Sum += h.Sum()
		if mn := h.Min(); first || mn < out.Min {
			out.Min = mn
		}
		if mx := h.Max(); first || mx > out.Max {
			out.Max = mx
		}
		first = false
		for b := range h.buckets {
			counts[b] += h.buckets[b].Load()
		}
	}
	for i, n := range counts {
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		out.Buckets = append(out.Buckets, HistBucket{Lo: lo, Hi: hi, Count: n})
	}
	return out
}

// Quantile estimates the p-quantile over the current window.
func (w *WindowedHistogram) Quantile(p float64) float64 {
	return w.Merged().Quantile(p)
}

// Windowed returns the windowed histogram with the given name, creating it
// on first use with the default 60-second window. Windowed histograms are a
// distinct metric kind ("windowed"): registering the same name as both a
// cumulative histogram and a windowed one is a kind collision.
func (r *Registry) Windowed(name string) *WindowedHistogram {
	r.mu.RLock()
	w, ok := r.windows[name]
	r.mu.RUnlock()
	if ok {
		return w
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok = r.windows[name]; ok {
		return w
	}
	r.noteMetric("windowed", name)
	w = NewWindowedHistogram(0, 0)
	r.windows[name] = w
	return w
}
