package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Snapshot is a point-in-time copy of every metric in a registry, in a form
// that serializes cleanly to JSON and round-trips back.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Timers     map[string]TimerSnapshot     `json:"timers,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Windows    map[string]WindowSnapshot    `json:"windows,omitempty"`
}

// WindowSnapshot is the exported state of one windowed histogram: the span
// the merged view covers plus the merged distribution itself.
type WindowSnapshot struct {
	WindowSeconds float64 `json:"window_seconds"`
	HistogramSnapshot
}

// TimerSnapshot is the exported state of one phase timer. Durations are in
// seconds so snapshots are unit-stable across tooling.
type TimerSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// HistogramSnapshot is the exported state of one histogram: summary moments
// plus the non-empty log-scale buckets.
type HistogramSnapshot struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty histogram bucket covering [Lo, Hi).
type HistBucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int64   `json:"count"`
}

// Quantile estimates the p-quantile of the snapshotted distribution with
// the same interpolation as Histogram.Quantile, so percentiles can be
// recomputed from serialized snapshots (e.g. a benchmark baseline file)
// without the live histogram.
func (hs HistogramSnapshot) Quantile(p float64) float64 {
	if hs.Count == 0 || math.IsNaN(p) {
		return 0
	}
	return quantileFromBuckets(p, hs.Count, hs.Min, hs.Max, func(i int) (lo, hi float64, c int64) {
		b := hs.Buckets[i]
		return b.Lo, b.Hi, b.Count
	}, len(hs.Buckets))
}

// Mean returns the arithmetic mean of the snapshotted observations.
func (hs HistogramSnapshot) Mean() float64 {
	if hs.Count == 0 {
		return 0
	}
	return hs.Sum / float64(hs.Count)
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerSnapshot, len(r.timers))
		for n, t := range r.timers {
			s.Timers[n] = TimerSnapshot{
				Count:        t.Count(),
				TotalSeconds: t.Total().Seconds(),
				MinSeconds:   t.Min().Seconds(),
				MaxSeconds:   t.Max().Seconds(),
			}
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for n, h := range r.histograms {
			s.Histograms[n] = snapshotHistogram(h)
		}
	}
	if len(r.windows) > 0 {
		s.Windows = make(map[string]WindowSnapshot, len(r.windows))
		for n, w := range r.windows {
			s.Windows[n] = WindowSnapshot{
				WindowSeconds:     w.Window().Seconds(),
				HistogramSnapshot: w.Merged(),
			}
		}
	}
	return s
}

// Snapshot copies the histogram's current state into its serializable
// form. It is the accessor embedding code (the bench harness, metric
// sidecars) uses to freeze one histogram without snapshotting a whole
// registry.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return snapshotHistogram(h)
}

func snapshotHistogram(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		hs.Buckets = append(hs.Buckets, HistBucket{Lo: lo, Hi: hi, Count: n})
	}
	return hs
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSONFile writes the registry snapshot to the file at path. The write
// is atomic — the snapshot lands in a temp file in the same directory and is
// renamed over path — so a crash mid-write can never leave a truncated
// sidecar next to otherwise-valid outputs.
func (r *Registry) WriteJSONFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		return cleanup(err)
	}
	// CreateTemp files are 0600; published snapshots should match the
	// usual create mode.
	if err := f.Chmod(0o644); err != nil {
		return cleanup(fmt.Errorf("obs: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}

// WriteText writes the snapshot in an expvar-style flat text form, one
// "name value" pair per line with sub-fields dotted onto the metric name,
// sorted by name. Convenient for diffing runs and for grep.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	for _, n := range sortedNames(s.Counters) {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(s.Timers) {
		t := s.Timers[n]
		if _, err := fmt.Fprintf(w, "%s.count %d\n%s.total_seconds %g\n%s.min_seconds %g\n%s.max_seconds %g\n",
			n, t.Count, n, t.TotalSeconds, n, t.MinSeconds, n, t.MaxSeconds); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(s.Histograms) {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "%s.count %d\n%s.sum %g\n%s.min %g\n%s.max %g\n",
			n, h.Count, n, h.Sum, n, h.Min, n, h.Max); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(s.Windows) {
		ws := s.Windows[n]
		if _, err := fmt.Fprintf(w, "%s.window_seconds %g\n%s.count %d\n%s.p50 %g\n%s.p99 %g\n",
			n, ws.WindowSeconds, n, ws.Count, n, ws.Quantile(0.50), n, ws.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}
