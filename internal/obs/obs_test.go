package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeConcurrentSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.gauge")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.SetMax(int64(w*1000 + i))
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 7999 {
		t.Fatalf("gauge max = %d, want 7999", got)
	}
}

func TestGaugeAddSet(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.gauge2")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perWorker; i++ {
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(workers) * perWorker * (perWorker + 1) / 2
	if got := h.Sum(); math.Abs(got-wantSum) > wantSum*1e-9 {
		t.Fatalf("sum = %g, want %g", got, wantSum)
	}
	if h.Min() != 1 || h.Max() != perWorker {
		t.Fatalf("min/max = %g/%g, want 1/%d", h.Min(), h.Max(), perWorker)
	}
	var bucketTotal int64
	for i := range h.buckets {
		bucketTotal += h.buckets[i].Load()
	}
	if bucketTotal != workers*perWorker {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*perWorker)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      float64
		lo, hi float64
	}{
		{1, 1, 2},
		{1.5, 1, 2},
		{2, 2, 4},
		{1024, 1024, 2048},
		{0.25, 0.25, 0.5},
	}
	for _, c := range cases {
		i := bucketIndex(c.v)
		lo, hi := bucketBounds(i)
		if lo != c.lo || hi != c.hi {
			t.Errorf("bucketBounds(bucketIndex(%g)) = [%g, %g), want [%g, %g)", c.v, lo, hi, c.lo, c.hi)
		}
	}
	if bucketIndex(0) != 0 || bucketIndex(-3) != 0 {
		t.Error("zero and negative observations must land in bucket 0")
	}
	// Out-of-range magnitudes clamp into the first/last finite buckets.
	if bucketIndex(math.Ldexp(1, -100)) != 1 {
		t.Error("tiny values must clamp to the first finite bucket")
	}
	if bucketIndex(math.Ldexp(1, 100)) != histNumBuckets-1 {
		t.Error("huge values must clamp to the last bucket")
	}
}

func TestTimerSpan(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("test.phase")
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	tm := r.Timer("test.phase")
	if tm.Count() != 1 {
		t.Fatalf("count = %d, want 1", tm.Count())
	}
	if tm.Total() < 2*time.Millisecond || tm.Total() != d {
		t.Fatalf("total = %v, span returned %v", tm.Total(), d)
	}
	if tm.Min() != d || tm.Max() != d {
		t.Fatalf("min/max = %v/%v, want %v", tm.Min(), tm.Max(), d)
	}
	// A zero Span is inert.
	var zero Span
	if zero.End() != 0 {
		t.Fatal("zero span must be a no-op")
	}
}

func TestTimerConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Observe("test.phase", time.Duration(i+1)*time.Microsecond)
			}
		}()
	}
	wg.Wait()
	tm := r.Timer("test.phase")
	if tm.Count() != 800 {
		t.Fatalf("count = %d, want 800", tm.Count())
	}
	if tm.Min() != time.Microsecond || tm.Max() != 100*time.Microsecond {
		t.Fatalf("min/max = %v/%v", tm.Min(), tm.Max())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter must return a stable instance per name")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("Gauge must return a stable instance per name")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Error("Histogram must return a stable instance per name")
	}
	if r.Timer("a") != r.Timer("a") {
		t.Error("Timer must return a stable instance per name")
	}
	if Or(nil) != Default() {
		t.Error("Or(nil) must be the default registry")
	}
	if Or(r) != r {
		t.Error("Or(r) must be r")
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("shared").Inc()
				r.Histogram("shared.h").Observe(1)
				r.Gauge("shared.g").SetMax(int64(i))
				r.StartSpan("shared.t").End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkg.sub.count").Add(42)
	r.Gauge("pkg.sub.depth").Set(7)
	r.Histogram("pkg.sub.ratio").Observe(0.5)
	r.Histogram("pkg.sub.ratio").Observe(3)
	// Extreme observations land in the zero/negative and clamp buckets,
	// whose bounds must still be JSON-encodable.
	r.Histogram("pkg.sub.extreme").Observe(0)
	r.Histogram("pkg.sub.extreme").Observe(math.Ldexp(1, 60))
	r.Observe("pkg.sub.phase", 5*time.Millisecond)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	want := r.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot did not round-trip:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Counters["pkg.sub.count"] != 42 || got.Gauges["pkg.sub.depth"] != 7 {
		t.Fatalf("bad values after round-trip: %+v", got)
	}
	if hs := got.Histograms["pkg.sub.ratio"]; hs.Count != 2 || hs.Sum != 3.5 || hs.Min != 0.5 || hs.Max != 3 {
		t.Fatalf("bad histogram after round-trip: %+v", hs)
	}
	if ts := got.Timers["pkg.sub.phase"]; ts.Count != 1 || ts.TotalSeconds != 0.005 {
		t.Fatalf("bad timer after round-trip: %+v", ts)
	}
}

func TestWriteJSONFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b.c").Inc()
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := r.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a.b.c"] != 1 {
		t.Fatalf("bad file contents: %+v", s)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(3)
	r.Counter("a.count").Add(1)
	r.Gauge("m.depth").Set(9)
	r.Observe("p.phase", time.Second)
	r.Histogram("h.vals").Observe(2)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"a.count 1\n", "z.count 3\n", "m.depth 9\n",
		"p.phase.count 1\n", "p.phase.total_seconds 1\n",
		"h.vals.count 1\n", "h.vals.sum 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Counters come out sorted.
	if strings.Index(out, "a.count") > strings.Index(out, "z.count") {
		t.Error("text output not sorted by name")
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Reset()
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}
	s := r.Snapshot()
	if len(s.Gauges) != 0 || len(s.Timers) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("snapshot after reset not empty: %+v", s)
	}
}

func TestProfileHelpers(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = math.Sqrt(float64(i))
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}
	heap := filepath.Join(dir, "heap.prof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile not written: %v", err)
	}
}
