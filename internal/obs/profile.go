package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns a stop
// function that ends profiling and closes the file. Meant for the CLIs'
// -cpuprofile flags.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile forces a GC (so the profile reflects live objects) and
// writes an allocation profile to path. Meant for the CLIs' -memprofile
// flags.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return f.Close()
}
