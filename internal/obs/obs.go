// Package obs is the observability substrate of the TreeSketch system: a
// dependency-free, concurrency-safe registry of named counters, gauges,
// log-scale histograms, and phase timers, with JSON and expvar-style text
// snapshot export plus runtime/pprof profiling helpers.
//
// Metric names follow the convention "pkg.subsystem.name" (for example
// "tsbuild.heap.pushes" or "eval.approx.embeddings"). Instrumented code
// either uses the process-wide Default registry or accepts an injected
// *Registry (nil always means Default, via Or), so tests and servers can
// isolate their measurements while CLIs share one snapshot.
//
// All metric operations are lock-free atomic updates; looking a metric up
// by name takes a read lock and should be done once, outside hot loops,
// with the returned pointer cached.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	timers     map[string]*Timer
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		timers:     make(map[string]*Timer),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry shared by instrumented packages
// that were not handed an explicit one.
func Default() *Registry { return defaultRegistry }

// Or returns r when non-nil and the Default registry otherwise; it is the
// injection point used by Options structs throughout the system.
func Or(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return defaultRegistry
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = newHistogram()
	r.histograms[name] = h
	return h
}

// Timer returns the timer with the given name, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok = r.timers[name]; ok {
		return t
	}
	t = &Timer{}
	r.timers[name] = t
	return t
}

// Reset removes every metric from the registry. Meant for tests and for
// CLIs that take several independent snapshots in one process.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
	r.timers = make(map[string]*Timer)
}

// sortedNames returns the keys of a metric map in lexical order; snapshots
// and text export iterate deterministically.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can move in both directions or track a
// maximum.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v when v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }
