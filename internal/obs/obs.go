// Package obs is the observability substrate of the TreeSketch system: a
// dependency-free, concurrency-safe registry of named counters, gauges,
// log-scale histograms, and phase timers, with JSON and expvar-style text
// snapshot export plus runtime/pprof profiling helpers.
//
// Metric names follow the convention "pkg.subsystem.name" (for example
// "tsbuild.heap.pushes" or "eval.approx.embeddings"). Instrumented code
// either uses the process-wide Default registry or accepts an injected
// *Registry (nil always means Default, via Or), so tests and servers can
// isolate their measurements while CLIs share one snapshot.
//
// All metric operations are lock-free atomic updates; looking a metric up
// by name takes a read lock and should be done once, outside hot loops,
// with the returned pointer cached.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"treesketch/internal/metricname"
)

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry (or use Default).
//
// Metric names are validated at registration time against the shared
// metricname grammar — the same rule the tslint `metricname` analyzer
// enforces statically on constant registration sites. Registration never
// fails (hot paths must not grow error branches), but grammar violations
// and kind collisions are recorded as typed errors retrievable through
// NameErrors, so tests and health checks can assert a clean registry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	timers     map[string]*Timer
	windows    map[string]*WindowedHistogram

	kinds    map[string]string // name -> kind of first registration
	nameErrs []error
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		timers:     make(map[string]*Timer),
		windows:    make(map[string]*WindowedHistogram),
		kinds:      make(map[string]string),
	}
}

// NameError records a metric registered under a name that violates the
// metricname grammar. The metric still works; the error is diagnostic.
type NameError struct {
	Kind string // "counter", "gauge", "histogram", or "timer"
	Name string
	Err  error // the grammar violation from metricname.Valid
}

func (e *NameError) Error() string {
	return fmt.Sprintf("obs: %s registered with invalid name: %v", e.Kind, e.Err)
}

func (e *NameError) Unwrap() error { return e.Err }

// DuplicateMetricError records one name registered as two different metric
// kinds (e.g. a counter and a gauge). Both metrics exist — the registry
// keeps kinds in separate maps — but their snapshots would collide, so the
// collision is surfaced as a typed error.
type DuplicateMetricError struct {
	Name     string
	Kind     string // kind of the later registration
	PrevKind string // kind of the first registration
}

func (e *DuplicateMetricError) Error() string {
	return fmt.Sprintf("obs: metric %q registered as both %s and %s", e.Name, e.PrevKind, e.Kind)
}

// noteMetric validates a first-time registration and records the name's
// kind. Callers hold r.mu; it runs once per name, never on the hot path.
func (r *Registry) noteMetric(kind, name string) {
	if err := metricname.Valid(name); err != nil {
		r.nameErrs = append(r.nameErrs, &NameError{Kind: kind, Name: name, Err: err})
	}
	if prev, ok := r.kinds[name]; ok {
		if prev != kind {
			r.nameErrs = append(r.nameErrs, &DuplicateMetricError{Name: name, Kind: kind, PrevKind: prev})
		}
		return
	}
	r.kinds[name] = kind
}

// NameErrors returns the registration problems recorded so far: one
// *NameError per grammar-violating name and one *DuplicateMetricError per
// cross-kind name collision, in registration order.
func (r *Registry) NameErrors() []error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]error(nil), r.nameErrs...)
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry shared by instrumented packages
// that were not handed an explicit one.
func Default() *Registry { return defaultRegistry }

// Or returns r when non-nil and the Default registry otherwise; it is the
// injection point used by Options structs throughout the system.
func Or(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return defaultRegistry
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	r.noteMetric("counter", name)
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	r.noteMetric("gauge", name)
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	r.noteMetric("histogram", name)
	h = newHistogram()
	r.histograms[name] = h
	return h
}

// Timer returns the timer with the given name, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok = r.timers[name]; ok {
		return t
	}
	r.noteMetric("timer", name)
	t = &Timer{}
	r.timers[name] = t
	return t
}

// Reset removes every metric from the registry. Meant for tests and for
// CLIs that take several independent snapshots in one process.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
	r.timers = make(map[string]*Timer)
	r.windows = make(map[string]*WindowedHistogram)
	r.kinds = make(map[string]string)
	r.nameErrs = nil
}

// sortedNames returns the keys of a metric map in lexical order; snapshots
// and text export iterate deterministically.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can move in both directions or track a
// maximum.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v when v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }
