package obs

import (
	"errors"
	"testing"
)

func TestRegistryNameValidation(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkg.sub.good")
	r.Counter("pkg.sub.good") // second lookup of the same name: no new error
	if errs := r.NameErrors(); len(errs) != 0 {
		t.Fatalf("valid name produced errors: %v", errs)
	}

	r.Counter("BadName")
	errs := r.NameErrors()
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want 1: %v", len(errs), errs)
	}
	var ne *NameError
	if !errors.As(errs[0], &ne) {
		t.Fatalf("error %v is not a *NameError", errs[0])
	}
	if ne.Name != "BadName" || ne.Kind != "counter" {
		t.Errorf("NameError = %+v, want Name=BadName Kind=counter", ne)
	}
}

func TestRegistryDuplicateKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkg.sub.metric")
	r.Gauge("pkg.sub.metric") // same name, different kind
	r.Counter("pkg.sub.metric")
	r.Gauge("pkg.sub.metric") // repeats do not re-record

	errs := r.NameErrors()
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want 1: %v", len(errs), errs)
	}
	var de *DuplicateMetricError
	if !errors.As(errs[0], &de) {
		t.Fatalf("error %v is not a *DuplicateMetricError", errs[0])
	}
	if de.Name != "pkg.sub.metric" || de.PrevKind != "counter" || de.Kind != "gauge" {
		t.Errorf("DuplicateMetricError = %+v", de)
	}
}

func TestRegistryResetClearsNameErrors(t *testing.T) {
	r := NewRegistry()
	r.Counter("nope")
	if len(r.NameErrors()) != 1 {
		t.Fatal("expected one error before Reset")
	}
	r.Reset()
	if errs := r.NameErrors(); len(errs) != 0 {
		t.Fatalf("Reset left errors: %v", errs)
	}
	// After Reset the name can be registered again as a different kind
	// without a duplicate error.
	r.Gauge("pkg.sub.metric")
	r.Reset()
	r.Counter("pkg.sub.metric")
	for _, err := range r.NameErrors() {
		var de *DuplicateMetricError
		if errors.As(err, &de) {
			t.Fatalf("duplicate error survived Reset: %v", err)
		}
	}
}

// TestDefaultRegistryClean asserts that every metric the instrumented
// packages register into a fresh registry passes the grammar. The bench
// harness and CLIs rely on obs.Default staying clean; the static analyzer
// covers constant names, this covers composed ones.
func TestDefaultRegistryClean(t *testing.T) {
	r := NewRegistry()
	r.StartSpan("tsbuild.create_pool").End()
	r.Histogram("bench.imdb_tx.03kb.approx_latency_seconds").Observe(1)
	if errs := r.NameErrors(); len(errs) != 0 {
		t.Fatalf("canonical names rejected: %v", errs)
	}
}
