package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is the request-scoped telemetry record of one query: a tree of named
// phase spans (parse, plan, memo, emit, ...) hung off a root span, plus a
// small bag of per-request counters. Traces complement the process-global
// Registry: the registry aggregates across requests, a Trace explains one.
//
// A Trace travels through the evaluation stack via context.Context
// (ContextWithTrace / TraceFrom). Every method is safe on a nil *Trace and
// does no work there, so instrumented code calls unconditionally and an
// untraced request pays only the context lookup — the disabled path takes
// no clock readings and allocates nothing.
//
// Traces are concurrency-safe: spans may be started and ended from the
// goroutines a request fans out to.
type Trace struct {
	id    uint64
	name  string
	start time.Time

	spanSeq atomic.Uint64

	mu       sync.Mutex
	spans    []SpanRecord
	counters map[string]int64
	labels   map[string]string
	total    time.Duration
	finished bool
}

// traceEpoch distinguishes trace IDs across process restarts; traceSeq
// distinguishes them within a process.
var (
	traceEpoch = uint64(time.Now().UnixNano())
	traceSeq   atomic.Uint64
)

// NewTrace starts a trace for one request. name is free-form display text
// (typically the query source) retained in snapshots and the slow-query
// flight recorder.
func NewTrace(name string) *Trace {
	return &Trace{
		id:    (traceEpoch << 20) | (traceSeq.Add(1) & 0xfffff),
		name:  name,
		start: time.Now(),
	}
}

// ID returns the trace identifier, unique within the process and seeded per
// process start.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// IDString is the trace ID in the fixed-width hex form responses and logs
// carry.
func (t *Trace) IDString() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("%016x", t.id)
}

// SpanRecord is one completed span of a trace: its IDs, position in the span
// tree, and timing relative to the trace start.
type SpanRecord struct {
	SpanID   uint64        `json:"span_id"`
	ParentID uint64        `json:"parent_id"` // 0: child of the root span
	Name     string        `json:"name"`
	Start    time.Duration `json:"start_ns"` // offset from trace start
	Duration time.Duration `json:"duration_ns"`
}

// TraceSpan is an in-flight span of a Trace. The zero value (from a nil
// trace) is inert: End and Child are no-ops.
type TraceSpan struct {
	t      *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time
}

// StartSpan opens a phase span as a direct child of the trace's root. On a
// nil trace it returns an inert span without reading the clock.
func (t *Trace) StartSpan(name string) TraceSpan {
	if t == nil {
		return TraceSpan{}
	}
	return TraceSpan{t: t, id: t.spanSeq.Add(1), name: name, start: time.Now()}
}

// Child opens a sub-span nested under s. Inert on a span of a nil trace.
func (s TraceSpan) Child(name string) TraceSpan {
	if s.t == nil {
		return TraceSpan{}
	}
	return TraceSpan{t: s.t, id: s.t.spanSeq.Add(1), parent: s.id, name: name, start: time.Now()}
}

// End closes the span, recording it on the trace, and returns its duration.
func (s TraceSpan) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := time.Since(s.start)
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, SpanRecord{
		SpanID:   s.id,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start.Sub(s.t.start),
		Duration: d,
	})
	s.t.mu.Unlock()
	return d
}

// AddCounter accumulates a named per-request counter (embeddings enumerated,
// result nodes emitted, ...) onto the trace.
func (t *Trace) AddCounter(name string, n int64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]int64, 4)
	}
	t.counters[name] += n
	t.mu.Unlock()
}

// SetLabel attaches a string label (a dataset name, a tenant, a shed
// reason) to the trace; later values overwrite earlier ones. Labels ride
// along into snapshots, where the flight recorder's HTTP surface can filter
// on them. Keys and values are free-form display text, like the trace name.
func (t *Trace) SetLabel(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.labels == nil {
		t.labels = make(map[string]string, 2)
	}
	t.labels[key] = value
	t.mu.Unlock()
}

// Label returns the current value of one label ("" when unset).
func (t *Trace) Label(key string) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.labels[key]
}

// Finish stamps the trace's total duration (first call wins) and returns it.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.finished {
		t.total = time.Since(t.start)
		t.finished = true
	}
	return t.total
}

// TraceSnapshot is the immutable, JSON-serializable form of a finished
// trace, as retained by the flight recorder and served at /debug/obs/slow.
type TraceSnapshot struct {
	TraceID      string            `json:"trace_id"`
	Name         string            `json:"name"`
	StartUnixNS  int64             `json:"start_unix_ns"`
	TotalSeconds float64           `json:"total_seconds"`
	Spans        []SpanRecord      `json:"spans,omitempty"`
	Counters     map[string]int64  `json:"counters,omitempty"`
	Labels       map[string]string `json:"labels,omitempty"`
}

// Snapshot freezes the trace. Unfinished traces report the time elapsed so
// far as their total.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.total
	if !t.finished {
		total = time.Since(t.start)
	}
	s := TraceSnapshot{
		TraceID:      fmt.Sprintf("%016x", t.id),
		Name:         t.name,
		StartUnixNS:  t.start.UnixNano(),
		TotalSeconds: total.Seconds(),
		Spans:        append([]SpanRecord(nil), t.spans...),
	}
	if len(t.counters) > 0 {
		s.Counters = make(map[string]int64, len(t.counters))
		for k, v := range t.counters {
			s.Counters[k] = v
		}
	}
	if len(t.labels) > 0 {
		s.Labels = make(map[string]string, len(t.labels))
		for k, v := range t.labels {
			s.Labels[k] = v
		}
	}
	return s
}

// traceKey is the context key Traces travel under.
type traceKey struct{}

// ContextWithTrace returns a context carrying t. A nil t returns ctx
// unchanged.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil when the request is
// untraced (including a nil ctx). All Trace methods accept the nil result,
// so callers need not branch.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
