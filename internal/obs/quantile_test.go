package obs

import (
	"math"
	"sort"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	h := NewRegistry().Histogram("test.q")
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(p); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", p, got)
		}
	}
	var hs HistogramSnapshot
	if got := hs.Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot Quantile(0.5) = %g, want 0", got)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := NewRegistry().Histogram("test.q")
	h.Observe(42.5)
	for _, p := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(p); got != 42.5 {
			t.Errorf("Quantile(%g) = %g, want 42.5", p, got)
		}
	}
}

func TestQuantileClampedP(t *testing.T) {
	h := NewRegistry().Histogram("test.q")
	h.Observe(1)
	h.Observe(100)
	if got := h.Quantile(-3); got != 1 {
		t.Errorf("Quantile(-3) = %g, want min 1", got)
	}
	if got := h.Quantile(7); got != 100 {
		t.Errorf("Quantile(7) = %g, want max 100", got)
	}
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Errorf("Quantile(NaN) = %g, want 0", got)
	}
}

func TestQuantileCrossBucketInterpolation(t *testing.T) {
	// 10 observations in [1,2) and 10 in [2,4): the median sits exactly
	// at the bucket boundary, and the 75th percentile interpolates half
	// way into the second bucket.
	h := NewRegistry().Histogram("test.q")
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	// First bucket is clamped to [min=1.5, 2), second to [2, max=3].
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %g, want 2 (bucket boundary)", got)
	}
	want := 2 + 0.5*(3-2) // halfway through the clamped second bucket
	if got := h.Quantile(0.75); math.Abs(got-want) > 1e-12 {
		t.Errorf("Quantile(0.75) = %g, want %g", got, want)
	}
	// Quantiles are always inside [Min, Max].
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := h.Quantile(p)
		if q < h.Min() || q > h.Max() {
			t.Fatalf("Quantile(%g) = %g outside [%g, %g]", p, q, h.Min(), h.Max())
		}
	}
}

func TestQuantileMonotonicAndRoughlyAccurate(t *testing.T) {
	// A deterministic skewed sample: quantile estimates must be monotone
	// in p and each estimate must land within one power of two of the
	// exact sample quantile (the histogram's bucket resolution).
	h := NewRegistry().Histogram("test.q")
	var vals []float64
	x := 1.0
	for i := 0; i < 1000; i++ {
		v := math.Mod(x, 500) + 0.25
		vals = append(vals, v)
		h.Observe(v)
		x = x*1.3 + 1
	}
	sort.Float64s(vals)
	prev := math.Inf(-1)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		got := h.Quantile(p)
		if got < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g: not monotone", p, got, prev)
		}
		prev = got
		exact := vals[int(p*float64(len(vals)-1))]
		if got < exact/2-1e-9 || got > exact*2+1e-9 {
			t.Errorf("Quantile(%g) = %g, exact sample quantile %g: off by more than one bucket", p, got, exact)
		}
	}
}

func TestQuantileZeroBucket(t *testing.T) {
	// Zero and negative observations collapse into bucket 0; with the
	// clamping they resolve to the observed extrema rather than the
	// bucket's degenerate [0,0) nominal range.
	h := NewRegistry().Histogram("test.q")
	h.Observe(0)
	h.Observe(0)
	h.Observe(0)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("all-zero Quantile(0.5) = %g, want 0", got)
	}
	h2 := NewRegistry().Histogram("test.q2")
	h2.Observe(-5)
	h2.Observe(-1)
	if got := h2.Quantile(1); got != -1 {
		t.Errorf("negative Quantile(1) = %g, want -1", got)
	}
	if got := h2.Quantile(0); got != -5 {
		t.Errorf("negative Quantile(0) = %g, want -5", got)
	}
}

func TestSnapshotQuantileMatchesHistogram(t *testing.T) {
	h := NewRegistry().Histogram("test.q")
	x := 3.7
	for i := 0; i < 500; i++ {
		h.Observe(math.Mod(x, 1000))
		x = x*1.7 + 0.1
	}
	hs := h.Snapshot()
	if hs.Count != h.Count() {
		t.Fatalf("snapshot count %d != %d", hs.Count, h.Count())
	}
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		if got, want := hs.Quantile(p), h.Quantile(p); got != want {
			t.Errorf("snapshot Quantile(%g) = %g, histogram says %g", p, got, want)
		}
	}
	if got, want := hs.Mean(), h.Mean(); math.Abs(got-want) > 1e-9 {
		t.Errorf("snapshot Mean = %g, histogram says %g", got, want)
	}
}
