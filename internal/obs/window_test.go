package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a WindowedHistogram's rotation deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now int64
}

func (c *fakeClock) nanos() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += int64(d)
	c.mu.Unlock()
}

// windowed builds a histogram with a 10s window in 5 slots (2s each) on a
// fake clock started inside the first period.
func windowed(t *testing.T) (*WindowedHistogram, *fakeClock) {
	t.Helper()
	clk := &fakeClock{now: int64(time.Hour)}
	w := NewWindowedHistogram(10*time.Second, 5)
	w.nowNanos = clk.nanos
	if got := w.Window(); got != 10*time.Second {
		t.Fatalf("Window() = %v, want 10s", got)
	}
	return w, clk
}

func TestWindowedMergesLiveSlots(t *testing.T) {
	w, clk := windowed(t)
	w.Observe(1)
	clk.advance(2 * time.Second) // next slot
	w.Observe(2)
	clk.advance(2 * time.Second)
	w.Observe(4)

	m := w.Merged()
	if m.Count != 3 {
		t.Fatalf("merged count = %d, want 3", m.Count)
	}
	if m.Sum != 7 || m.Min != 1 || m.Max != 4 {
		t.Errorf("merged sum/min/max = %v/%v/%v, want 7/1/4", m.Sum, m.Min, m.Max)
	}
	if q := w.Quantile(1); q != 4 {
		t.Errorf("p100 = %v, want 4", q)
	}
}

// TestWindowedExpiry pins the headline behavior: observations age out of the
// merged view once the window slides past them, even with no new traffic to
// recycle their slots.
func TestWindowedExpiry(t *testing.T) {
	w, clk := windowed(t)
	for i := 0; i < 100; i++ {
		w.Observe(0.5)
	}
	if m := w.Merged(); m.Count != 100 {
		t.Fatalf("burst count = %d, want 100", m.Count)
	}

	// One slot short of expiry: the burst is still visible.
	clk.advance(8 * time.Second)
	if m := w.Merged(); m.Count != 100 {
		t.Errorf("count after 8s = %d, want 100 (still inside the window)", m.Count)
	}

	// Past the window: silence, with the slot recycled only lazily.
	clk.advance(4 * time.Second)
	if m := w.Merged(); m.Count != 0 {
		t.Errorf("count after expiry = %d, want 0", m.Count)
	}
	if q := w.Quantile(0.99); q != 0 {
		t.Errorf("p99 of an expired window = %v, want 0", q)
	}
}

// TestWindowedSlotRecycle drives the clock a full lap around the ring so a
// slot is reused for a new period: the old period's observations must not
// leak into the new one.
func TestWindowedSlotRecycle(t *testing.T) {
	w, clk := windowed(t)
	w.Observe(100)
	clk.advance(10 * time.Second) // exactly one lap: same slot, new period
	w.Observe(1)
	m := w.Merged()
	if m.Count != 1 || m.Max != 1 {
		t.Errorf("after recycle count/max = %d/%v, want 1/1", m.Count, m.Max)
	}
}

// TestWindowedBoundary observes on both sides of a slot boundary and checks
// each lands in its own slot (rotation happens on the first observation of
// the new period, not a timer).
func TestWindowedBoundary(t *testing.T) {
	clk := &fakeClock{now: int64(2*time.Second) - 1} // last nanosecond of period 0
	w := NewWindowedHistogram(10*time.Second, 5)
	w.nowNanos = clk.nanos
	w.Observe(1)
	clk.advance(1) // first nanosecond of period 1
	w.Observe(2)
	if m := w.Merged(); m.Count != 2 {
		t.Fatalf("both sides of the boundary should be live, got count %d", m.Count)
	}
	live := 0
	for i := range w.slots {
		if w.slots[i].h.Load().Count() > 0 {
			live++
		}
	}
	if live != 2 {
		t.Errorf("observations landed in %d slots, want 2", live)
	}
}

func TestWindowedDefaults(t *testing.T) {
	w := NewWindowedHistogram(0, 0)
	if got := w.Window(); got != DefaultWindow {
		t.Errorf("default window = %v, want %v", got, DefaultWindow)
	}
	if m := w.Merged(); m.Count != 0 {
		t.Errorf("empty merged count = %d", m.Count)
	}
	if q := w.Quantile(0.5); q != 0 {
		t.Errorf("empty p50 = %v, want 0", q)
	}
}

func TestRegistryWindowed(t *testing.T) {
	r := NewRegistry()
	w1 := r.Windowed("serve.request.latency_seconds")
	w2 := r.Windowed("serve.request.latency_seconds")
	if w1 != w2 {
		t.Error("same name should return the same windowed histogram")
	}
	if errs := r.NameErrors(); len(errs) != 0 {
		t.Fatalf("unexpected name errors: %v", errs)
	}
	// A windowed histogram and a cumulative one are different kinds.
	r.Histogram("serve.request.latency_seconds")
	if errs := r.NameErrors(); len(errs) != 1 {
		t.Fatalf("want 1 kind-collision error, got %v", errs)
	}
	// Windowed names go through the grammar like any registration.
	r2 := NewRegistry()
	r2.Windowed("Bad.Name")
	if errs := r2.NameErrors(); len(errs) != 1 {
		t.Fatalf("want 1 grammar error, got %v", errs)
	}
}

// TestWindowedConcurrent hammers Observe from several goroutines while the
// clock advances across slot boundaries and readers merge, for the race
// detector's benefit.
func TestWindowedConcurrent(t *testing.T) {
	w, clk := windowed(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5000; j++ {
				w.Observe(0.001)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			clk.advance(150 * time.Millisecond)
			w.Merged()
			w.Quantile(0.99)
		}
	}()
	wg.Wait()
	// The clock stopped 7.5s in — under one window minus a slot — so every
	// period observed is still inside the window: nothing may have been lost.
	if m := w.Merged(); m.Count != 20000 {
		t.Errorf("merged count = %d, want 20000", m.Count)
	}
}

// TestHistogramObserveVsSnapshot pins that a cumulative histogram can be
// snapshotted while writers are active (the bench harness and the /metrics
// handler both do this).
func TestHistogramObserveVsSnapshot(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5000; j++ {
				h.Observe(1.5)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count < 0 {
			t.Errorf("negative count %d", s.Count)
		}
		h.Quantile(0.99)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 20000 || s.Min != 1.5 || s.Max != 1.5 {
		t.Errorf("final snapshot = %+v", s)
	}
}
