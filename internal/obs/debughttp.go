package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the standard observability HTTP surface over a registry:
//
//	/metrics            OpenMetrics/Prometheus text exposition
//	/debug/obs          full JSON snapshot of the registry
//	/debug/obs/text     flat expvar-style text snapshot (grep-friendly)
//	/debug/obs/slow     the flight recorder's K slowest traces as JSON;
//	                    ?dataset=<name> keeps only traces whose "dataset"
//	                    label matches, so operators can scope the flight
//	                    recorder to one tenant
//	/debug/obs/errors   metric-name registration errors as JSON
//	/debug/pprof/*      runtime profiling (CPU, heap, goroutines, trace)
//
// rec may be nil, in which case /debug/obs/slow serves an empty list. The
// mux is mounted standalone by cmd/tsserve and embeddable under any parent
// mux via http.Handle("/", ...).
func DebugMux(r *Registry, rec *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", OpenMetricsContentType)
		r.WriteOpenMetrics(w)
	})
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/obs/text", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
	mux.HandleFunc("/debug/obs/slow", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		traces := rec.Slowest()
		if ds := req.URL.Query().Get("dataset"); ds != "" {
			kept := traces[:0]
			for _, t := range traces {
				if t.Labels["dataset"] == ds {
					kept = append(kept, t)
				}
			}
			traces = kept
		}
		if traces == nil {
			traces = []TraceSnapshot{}
		}
		writeJSON(w, traces)
	})
	mux.HandleFunc("/debug/obs/errors", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		errs := r.NameErrors()
		msgs := make([]string, 0, len(errs))
		for _, err := range errs {
			msgs = append(msgs, err.Error())
		}
		writeJSON(w, msgs)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
