package query

import (
	"strings"
	"testing"

	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func TestParseFigure2Query(t *testing.T) {
	// The paper's example query: for $q1 in //a[//b], $q2 in $q1//p,
	// return $q1//n and $q2//k.
	q := MustParse("//a[//b]{//p{//k?},//n?}")
	if q.NumVars() != 5 {
		t.Fatalf("NumVars = %d, want 5", q.NumVars())
	}
	if len(q.Root.Edges) != 1 {
		t.Fatalf("root edges = %d, want 1", len(q.Root.Edges))
	}
	e1 := q.Root.Edges[0]
	if e1.Optional {
		t.Fatal("q0->q1 should be required")
	}
	if got := e1.Path.String(); got != "//a[//b]" {
		t.Fatalf("path(q0,q1) = %q", got)
	}
	if len(e1.Child.Edges) != 2 {
		t.Fatalf("q1 edges = %d, want 2", len(e1.Child.Edges))
	}
	p := e1.Child.Edges[0]
	if p.Path.String() != "//p" || p.Optional {
		t.Fatalf("q1->q2 = %q optional=%v", p.Path.String(), p.Optional)
	}
	k := p.Child.Edges[0]
	if k.Path.String() != "//k" || !k.Optional {
		t.Fatalf("q2->q3 = %q optional=%v", k.Path.String(), k.Optional)
	}
	n := e1.Child.Edges[1]
	if n.Path.String() != "//n" || !n.Optional {
		t.Fatalf("q1->q4 = %q optional=%v", n.Path.String(), n.Optional)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{
		"//a",
		"/a/b/c",
		"//a[//b]",
		"/a[/g]//f",
		"//a[//b]{//p{//k?},//n?}",
		"//a[/b][/c]{/d}",
		"//x{/y,/z?,/w}",
		"/a[/b[/c]]",
	}
	for _, src := range cases {
		q := MustParse(src)
		if got := q.String(); got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
		q2 := MustParse(q.String())
		if q2.String() != q.String() {
			t.Errorf("re-parse changed %q", src)
		}
	}
}

func TestParseWhitespace(t *testing.T) {
	a := MustParse(" //a [ //b ] { /c ? , //d } ")
	b := MustParse("//a[//b]{/c?,//d}")
	if a.String() != b.String() {
		t.Fatalf("whitespace changed parse: %q vs %q", a.String(), b.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"a",          // missing axis
		"//",         // missing label
		"//a[",       // unterminated predicate
		"//a[]",      // empty predicate
		"//a{",       // unterminated braces
		"//a{}",      // empty braces
		"//a}",       // stray brace
		"//a,,//b",   // empty edge
		"//a[//b]]",  // stray bracket
		"//a{//b},,", // trailing comma garbage
		"///a",       // triple slash: '//' + '/a'? invalid label
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestVarNumbering(t *testing.T) {
	q := MustParse("//a{//b{//c},//d},//e")
	vars := q.Vars()
	want := []string{"q0", "q1", "q2", "q3", "q4", "q5"}
	if len(vars) != len(want) {
		t.Fatalf("vars = %d, want %d", len(vars), len(want))
	}
	for i, v := range vars {
		if v.Var != want[i] {
			t.Errorf("var %d = %q, want %q", i, v.Var, want[i])
		}
	}
}

func TestValidateRejectsBadQueries(t *testing.T) {
	bad := []*Query{
		{},
		{Root: &Node{}},
		{Root: &Node{Edges: []*Edge{{Path: &Path{}, Child: &Node{}}}}},
		{Root: &Node{Edges: []*Edge{{Path: &Path{Steps: []Step{{Label: ""}}}, Child: &Node{}}}}},
		{Root: &Node{Edges: []*Edge{{Path: &Path{Steps: []Step{{Label: "a"}}}}}}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad query", i)
		}
	}
}

func TestAxisString(t *testing.T) {
	if Child.String() != "/" || Descendant.String() != "//" {
		t.Fatal("axis strings wrong")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("not a query")
}

func TestGenerateDeterministic(t *testing.T) {
	st := stable.Build(xmltree.MustCompact("r(a*3(b(c,c),b(c)),a(b(c)),d*2(e))"))
	q1 := Generate(st, 20, GenOptions{Seed: 42})
	q2 := Generate(st, 20, GenOptions{Seed: 42})
	if len(q1) != 20 || len(q2) != 20 {
		t.Fatalf("generated %d/%d queries, want 20", len(q1), len(q2))
	}
	for i := range q1 {
		if q1[i].String() != q2[i].String() {
			t.Fatalf("query %d differs across same-seed runs", i)
		}
	}
	q3 := Generate(st, 20, GenOptions{Seed: 43})
	same := 0
	for i := range q3 {
		if q1[i].String() == q3[i].String() {
			same++
		}
	}
	if same == 20 {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateQueriesAreValid(t *testing.T) {
	st := stable.Build(xmltree.MustCompact("r(a*3(b(c,c),b(c)),a(b(c)),d*2(e(f,g)))"))
	for i, q := range Generate(st, 100, GenOptions{Seed: 7}) {
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v (%s)", i, err, q)
		}
		if !strings.HasPrefix(q.String(), "/") {
			t.Fatalf("query %d: %q does not start with an axis", i, q)
		}
	}
}

func TestGenerateLabelsExistInDocument(t *testing.T) {
	doc := xmltree.MustCompact("r(a*2(b(c)),d(e))")
	st := stable.Build(doc)
	labels := map[string]bool{}
	for _, l := range doc.Labels() {
		labels[l] = true
	}
	var checkPath func(p *Path)
	checkPath = func(p *Path) {
		for _, s := range p.Steps {
			if !labels[s.Label] {
				t.Fatalf("generated label %q not in document", s.Label)
			}
			for _, pred := range s.Preds {
				checkPath(pred)
			}
		}
	}
	for _, q := range Generate(st, 50, GenOptions{Seed: 1}) {
		var rec func(n *Node)
		rec = func(n *Node) {
			for _, e := range n.Edges {
				checkPath(e.Path)
				rec(e.Child)
			}
		}
		rec(q.Root)
	}
}

func TestGenerateOnLeafOnlyRoot(t *testing.T) {
	// A document whose root has no children cannot support any query.
	st := stable.Build(xmltree.MustCompact("r"))
	if got := Generate(st, 5, GenOptions{Seed: 1}); len(got) != 0 {
		t.Fatalf("generated %d queries from childless root", len(got))
	}
}

func TestGenerateRespectsFanoutAndDepth(t *testing.T) {
	st := stable.Build(xmltree.MustCompact("r(a*2(b*2(c*2(d))))"))
	for _, q := range Generate(st, 50, GenOptions{Seed: 3, MaxFanout: 1, MaxQueryDepth: 1}) {
		var maxDepth func(n *Node) int
		maxDepth = func(n *Node) int {
			d := 0
			if len(n.Edges) > 1 {
				t.Fatalf("fanout exceeded: %s", q)
			}
			for _, e := range n.Edges {
				if cd := maxDepth(e.Child) + 1; cd > d {
					d = cd
				}
			}
			return d
		}
		if d := maxDepth(q.Root); d > 2 {
			t.Fatalf("query depth %d exceeds limit: %s", d, q)
		}
	}
}
