package query

import (
	"math/rand"

	"treesketch/internal/stable"
)

// GenOptions configures the workload generator. Zero values select the
// defaults; Seed 0 is a valid (deterministic) seed.
type GenOptions struct {
	Seed int64
	// MaxFanout bounds the number of child edges per query variable
	// (default 2).
	MaxFanout int
	// MaxQueryDepth bounds the query-tree depth below the root (default 2,
	// i.e. up to grandchild variables).
	MaxQueryDepth int
	// MaxSteps bounds the location steps per path expression (default 2).
	MaxSteps int
	// DescendantProb is the probability a step uses the // axis
	// (default 0.5).
	DescendantProb float64
	// PredProb is the probability a step carries a branching predicate
	// (default 0.3).
	PredProb float64
	// OptionalProb is the probability a non-first edge is dashed
	// (default 0.3).
	OptionalProb float64
}

func (o GenOptions) withDefaults() GenOptions {
	if o.MaxFanout <= 0 {
		o.MaxFanout = 2
	}
	if o.MaxQueryDepth <= 0 {
		o.MaxQueryDepth = 2
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 2
	}
	if o.DescendantProb <= 0 {
		o.DescendantProb = 0.5
	}
	if o.PredProb <= 0 {
		o.PredProb = 0.3
	}
	if o.OptionalProb <= 0 {
		o.OptionalProb = 0.3
	}
	return o
}

// Generate produces n positive twig queries against the document summarized
// by the count-stable synopsis st, following the paper's workload
// methodology (Section 6.1): queries are built by sampling sub-trees of the
// stable synopsis and converting them to twigs. Because count stability
// guarantees every element of a class has children along each synopsis
// edge, each sampled query has a non-empty result by construction.
func Generate(st *stable.Synopsis, n int, opts GenOptions) []*Query {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	g := &generator{st: st, rng: rng, opts: opts}
	out := make([]*Query, 0, n)
	attempts := 0
	for len(out) < n && attempts < 50*n+100 {
		attempts++
		if q := g.query(); q != nil {
			out = append(out, q)
		}
	}
	return out
}

type generator struct {
	st   *stable.Synopsis
	rng  *rand.Rand
	opts GenOptions
}

// query builds one twig rooted at the document root class, or nil when the
// sampled walk dead-ends immediately.
func (g *generator) query() *Query {
	root := &Node{}
	if !g.addEdges(root, g.st.Root, 0, true) {
		return nil
	}
	q := &Query{Root: root}
	q.Renumber()
	if q.Validate() != nil {
		return nil
	}
	return q
}

// addEdges attaches 1..MaxFanout sampled edges to the query node qn, whose
// bindings come from stable class from. Returns false if no edge could be
// sampled and the node was required to have one.
func (g *generator) addEdges(qn *Node, from int, depth int, required bool) bool {
	// The root has a single path edge (like the paper's example twigs);
	// branching happens below it.
	fanout := 1
	if depth > 0 {
		fanout = 1 + g.rng.Intn(g.opts.MaxFanout)
	}
	added := 0
	for i := 0; i < fanout; i++ {
		path, end, ok := g.path(from)
		if !ok {
			continue
		}
		e := &Edge{Path: path, Child: &Node{}}
		if added > 0 && g.rng.Float64() < g.opts.OptionalProb {
			e.Optional = true
		}
		qn.Edges = append(qn.Edges, e)
		added++
		if depth < g.opts.MaxQueryDepth && g.rng.Float64() < 0.6 {
			g.addEdges(e.Child, end, depth+1, false)
		}
	}
	return !required || added > 0
}

// path samples a path expression starting at stable class from, returning
// the path and the class its last step binds.
func (g *generator) path(from int) (*Path, int, bool) {
	steps := 1 + g.rng.Intn(g.opts.MaxSteps)
	cur := from
	var out []Step
	for i := 0; i < steps; i++ {
		edges := g.st.Nodes[cur].Edges
		if len(edges) == 0 {
			break
		}
		axis := Child
		walk := 1
		if g.rng.Float64() < g.opts.DescendantProb {
			axis = Descendant
			walk = 1 + g.rng.Intn(2)
		}
		target := cur
		for w := 0; w < walk; w++ {
			next := g.st.Nodes[target].Edges
			if len(next) == 0 {
				break
			}
			target = next[g.rng.Intn(len(next))].Child
		}
		if target == cur {
			break
		}
		step := Step{Axis: axis, Label: g.st.Nodes[target].Label}
		if g.rng.Float64() < g.opts.PredProb {
			if pred, _, ok := g.predPath(target); ok {
				step.Preds = append(step.Preds, pred)
			}
		}
		out = append(out, step)
		cur = target
	}
	if len(out) == 0 {
		return nil, 0, false
	}
	return &Path{Steps: out}, cur, true
}

// predPath samples a short existential predicate anchored at class from.
func (g *generator) predPath(from int) (*Path, int, bool) {
	edges := g.st.Nodes[from].Edges
	if len(edges) == 0 {
		return nil, 0, false
	}
	axis := Child
	if g.rng.Float64() < g.opts.DescendantProb {
		axis = Descendant
	}
	target := edges[g.rng.Intn(len(edges))].Child
	return &Path{Steps: []Step{{Axis: axis, Label: g.st.Nodes[target].Label}}}, target, true
}
