package query

import (
	"fmt"
)

// Parse reads a twig query from the package's textual syntax:
//
//	query := edges
//	edges := edge (',' edge)*
//	edge  := path ['?'] [ '{' edges '}' ]
//	path  := step+
//	step  := ('//' | '/') label pred*
//	pred  := '[' path ']'
//	label := [A-Za-z0-9_-]+
//
// Example (the paper's Figure 2 query): "//a[//b]{//p{//k?},//n?}".
// '?' marks a dashed (optional, return-clause) edge. Variables are named
// q0 (implicit root) then q1..qn in pre-order.
func Parse(src string) (*Query, error) {
	p := &parser{src: src}
	edges, err := p.edges()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("query: parse: trailing input at offset %d", p.pos)
	}
	q := &Query{Root: &Node{Edges: edges}}
	q.Renumber()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and examples with
// literal queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) edges() ([]*Edge, error) {
	var out []*Edge
	for {
		e, err := p.edge()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		return out, nil
	}
}

func (p *parser) edge() (*Edge, error) {
	path, err := p.path()
	if err != nil {
		return nil, err
	}
	e := &Edge{Path: path, Child: &Node{}}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '?' {
		e.Optional = true
		p.pos++
		p.skipSpace()
	}
	if p.pos < len(p.src) && p.src[p.pos] == '{' {
		p.pos++
		kids, err := p.edges()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '}' {
			return nil, fmt.Errorf("query: parse: expected '}' at offset %d", p.pos)
		}
		p.pos++
		e.Child.Edges = kids
	}
	return e, nil
}

func (p *parser) path() (*Path, error) {
	var steps []Step
	for {
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '/' {
			break
		}
		axis := Child
		p.pos++
		if p.pos < len(p.src) && p.src[p.pos] == '/' {
			axis = Descendant
			p.pos++
		}
		label, err := p.label()
		if err != nil {
			return nil, err
		}
		step := Step{Axis: axis, Label: label}
		for {
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != '[' {
				break
			}
			p.pos++
			pred, err := p.path()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != ']' {
				return nil, fmt.Errorf("query: parse: expected ']' at offset %d", p.pos)
			}
			p.pos++
			step.Preds = append(step.Preds, pred)
		}
		steps = append(steps, step)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("query: parse: expected path at offset %d", p.pos)
	}
	return &Path{Steps: steps}, nil
}

func (p *parser) label() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isLabelByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("query: parse: expected label at offset %d", p.pos)
	}
	return p.src[start:p.pos], nil
}

func isLabelByte(b byte) bool {
	return b == '_' || b == '-' ||
		('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}
