package query

import "testing"

// FuzzQueryParse checks the parser never panics and that accepted queries
// round-trip through String/Parse to a fixed point.
func FuzzQueryParse(f *testing.F) {
	seeds := []string{
		"//a",
		"/a/b/c",
		"//a[//b]{//p{//k?},//n?}",
		"/a[/g]//f",
		"//x{/y,/z?,/w}",
		"//a[/b[/c]]",
		"//a{",
		"//a[",
		"//a??",
		"a//b",
		"//a{//b}}",
		"// a [ / b ]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", printed, src, err)
		}
		if q2.String() != printed {
			t.Fatalf("not a fixed point: %q -> %q", printed, q2.String())
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails Validate: %v", err)
		}
	})
}
