// Package query models XML twig queries (Section 2 of the paper).
//
// A twig query is a node-labeled query tree: each node carries a variable
// name (q0 is always bound to the document root) and each edge is annotated
// with an XPath expression restricted to the child ("/") and descendant
// ("//") axes, with optional existential branching predicates "[path]".
// Following the generalized-tree-pattern notation, edges may be "dashed"
// (optional): they come from the query's return clause and may have empty
// results without nullifying the whole query.
package query

import (
	"fmt"
	"strings"
)

// Axis is an XPath navigation axis.
type Axis int

const (
	// Child is the "/" axis: immediate sub-elements.
	Child Axis = iota
	// Descendant is the "//" axis: proper descendants at any depth.
	Descendant
)

// String renders the axis in XPath syntax ("/" or "//").
func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Step is one location step of a path expression: an axis, a target label,
// and zero or more existential branching predicates evaluated at the
// element the step binds.
type Step struct {
	Axis  Axis
	Label string
	Preds []*Path
}

// Path is a label path l1[p1]/l2[p2]/.../ln[pn] with per-step axes.
type Path struct {
	Steps []Step
}

// MainSteps returns the steps of the path without predicates (the "main
// path" of EvalQuery, Figure 7 line 4).
func (p *Path) MainSteps() []Step { return p.Steps }

// String renders the path in XPath syntax.
func (p *Path) String() string {
	var b strings.Builder
	for _, s := range p.Steps {
		b.WriteString(s.Axis.String())
		b.WriteString(s.Label)
		for _, pred := range s.Preds {
			b.WriteByte('[')
			b.WriteString(pred.String())
			b.WriteByte(']')
		}
	}
	return b.String()
}

// Edge connects a query variable to a child variable via a path expression.
type Edge struct {
	Path     *Path
	Optional bool // dashed edge: empty results do not nullify the query
	Child    *Node
}

// Node is a query-tree node: one query variable.
type Node struct {
	Var   string
	Edges []*Edge
}

// Query is a twig query: a query tree whose root variable q0 is bound to
// the document root.
type Query struct {
	Root *Node

	numVars int
}

// NumVars reports the number of variables including q0.
func (q *Query) NumVars() int { return q.numVars }

// Vars returns all query nodes in pre-order (q0 first).
func (q *Query) Vars() []*Node {
	var out []*Node
	var rec func(n *Node)
	rec = func(n *Node) {
		out = append(out, n)
		for _, e := range n.Edges {
			rec(e.Child)
		}
	}
	if q.Root != nil {
		rec(q.Root)
	}
	return out
}

// String renders the query in the package's textual syntax: each edge is
// its path expression, '?' marks optional edges, and braces nest child
// edges, e.g. "//a[//b]{//p{//k?},//n?}".
func (q *Query) String() string {
	var b strings.Builder
	writeEdges(&b, q.Root)
	return b.String()
}

func writeEdges(b *strings.Builder, n *Node) {
	for i, e := range n.Edges {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.Path.String())
		if e.Optional {
			b.WriteByte('?')
		}
		if len(e.Child.Edges) > 0 {
			b.WriteByte('{')
			writeEdges(b, e.Child)
			b.WriteByte('}')
		}
	}
}

// Renumber reassigns variable names q0..qn in pre-order. Called by the
// parser and the generator; useful after programmatic query surgery.
func (q *Query) Renumber() {
	i := 0
	var rec func(n *Node)
	rec = func(n *Node) {
		n.Var = fmt.Sprintf("q%d", i)
		i++
		for _, e := range n.Edges {
			rec(e.Child)
		}
	}
	if q.Root != nil {
		rec(q.Root)
	}
	q.numVars = i
}

// Validate checks structural sanity: non-nil paths with at least one step,
// no empty labels, and at least one edge from the root.
func (q *Query) Validate() error {
	if q.Root == nil {
		return fmt.Errorf("query: nil root")
	}
	if len(q.Root.Edges) == 0 {
		return fmt.Errorf("query: root has no edges")
	}
	var check func(n *Node) error
	var checkPath func(p *Path) error
	checkPath = func(p *Path) error {
		if p == nil || len(p.Steps) == 0 {
			return fmt.Errorf("query: empty path expression")
		}
		for _, s := range p.Steps {
			if s.Label == "" {
				return fmt.Errorf("query: step with empty label")
			}
			for _, pred := range s.Preds {
				if err := checkPath(pred); err != nil {
					return err
				}
			}
		}
		return nil
	}
	check = func(n *Node) error {
		for _, e := range n.Edges {
			if err := checkPath(e.Path); err != nil {
				return err
			}
			if e.Child == nil {
				return fmt.Errorf("query: edge with nil child under %s", n.Var)
			}
			if err := check(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	return check(q.Root)
}
