// Package container provides the heap structures used by the TreeSketch
// construction algorithm: a plain min-heap keyed by a float priority, and a
// bounded double-ended heap that retains the k smallest items seen
// (CreatePool, Figure 6 of the paper, keeps the best Uh candidate merges and
// pops the worst when over capacity).
package container

// MinHeap is a binary min-heap of values of type T ordered by a float64
// priority. The zero value is ready to use.
type MinHeap[T any] struct {
	items []heapItem[T]
}

type heapItem[T any] struct {
	prio  float64
	value T
}

// Len reports the number of items in the heap.
func (h *MinHeap[T]) Len() int { return len(h.items) }

// Push inserts value with the given priority.
func (h *MinHeap[T]) Push(prio float64, value T) {
	h.items = append(h.items, heapItem[T]{prio, value})
	h.up(len(h.items) - 1)
}

// PopMin removes and returns the value with the smallest priority. The
// second result is false when the heap is empty.
func (h *MinHeap[T]) PopMin() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	top := h.items[0].value
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top, true
}

// PeekMin returns the smallest-priority value without removing it.
func (h *MinHeap[T]) PeekMin() (T, float64, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, 0, false
	}
	return h.items[0].value, h.items[0].prio, true
}

// Reset empties the heap, retaining allocated capacity.
func (h *MinHeap[T]) Reset() { h.items = h.items[:0] }

func (h *MinHeap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].prio <= h.items[i].prio {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *MinHeap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.items[l].prio < h.items[smallest].prio {
			smallest = l
		}
		if r < n && h.items[r].prio < h.items[smallest].prio {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// BoundedMinSet retains at most Cap values with the smallest priorities seen.
// It is the "double-ended heap" of CreatePool: pushes beyond capacity evict
// the current maximum. Implemented as a max-heap of size <= Cap; Drain
// returns the retained values.
type BoundedMinSet[T any] struct {
	cap   int
	items []heapItem[T] // max-heap by prio
}

// NewBoundedMinSet returns a set retaining the capacity smallest items.
// capacity must be positive.
func NewBoundedMinSet[T any](capacity int) *BoundedMinSet[T] {
	if capacity <= 0 {
		panic("container: BoundedMinSet capacity must be positive")
	}
	return &BoundedMinSet[T]{cap: capacity}
}

// Len reports the number of retained items.
func (s *BoundedMinSet[T]) Len() int { return len(s.items) }

// Full reports whether the set holds its full capacity of items.
func (s *BoundedMinSet[T]) Full() bool { return len(s.items) >= s.cap }

// Push offers a value. If the set is at capacity and prio is not smaller
// than the current maximum, the value is rejected and Push returns false.
func (s *BoundedMinSet[T]) Push(prio float64, value T) bool {
	if len(s.items) < s.cap {
		s.items = append(s.items, heapItem[T]{prio, value})
		s.up(len(s.items) - 1)
		return true
	}
	if prio >= s.items[0].prio {
		return false
	}
	s.items[0] = heapItem[T]{prio, value}
	s.down(0)
	return true
}

// MaxPrio returns the largest retained priority; valid only when Len > 0.
func (s *BoundedMinSet[T]) MaxPrio() float64 {
	if len(s.items) == 0 {
		panic("container: MaxPrio on empty BoundedMinSet")
	}
	return s.items[0].prio
}

// Drain removes and returns all retained items with their priorities, in
// unspecified order. The set is empty afterwards.
func (s *BoundedMinSet[T]) Drain() ([]T, []float64) {
	values := make([]T, len(s.items))
	prios := make([]float64, len(s.items))
	for i, it := range s.items {
		values[i] = it.value
		prios[i] = it.prio
	}
	s.items = s.items[:0]
	return values, prios
}

func (s *BoundedMinSet[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.items[parent].prio >= s.items[i].prio {
			return
		}
		s.items[parent], s.items[i] = s.items[i], s.items[parent]
		i = parent
	}
}

func (s *BoundedMinSet[T]) down(i int) {
	n := len(s.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && s.items[l].prio > s.items[largest].prio {
			largest = l
		}
		if r < n && s.items[r].prio > s.items[largest].prio {
			largest = r
		}
		if largest == i {
			return
		}
		s.items[i], s.items[largest] = s.items[largest], s.items[i]
		i = largest
	}
}
