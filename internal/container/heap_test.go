package container

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMinHeapPopsInPriorityOrder(t *testing.T) {
	var h MinHeap[string]
	h.Push(3, "c")
	h.Push(1, "a")
	h.Push(2, "b")
	h.Push(0.5, "z")
	want := []string{"z", "a", "b", "c"}
	for _, w := range want {
		v, ok := h.PopMin()
		if !ok || v != w {
			t.Fatalf("PopMin = %q,%v; want %q", v, ok, w)
		}
	}
	if _, ok := h.PopMin(); ok {
		t.Fatal("PopMin on empty heap returned ok")
	}
}

func TestMinHeapPeek(t *testing.T) {
	var h MinHeap[int]
	if _, _, ok := h.PeekMin(); ok {
		t.Fatal("PeekMin on empty heap returned ok")
	}
	h.Push(5, 50)
	h.Push(2, 20)
	v, p, ok := h.PeekMin()
	if !ok || v != 20 || p != 2 {
		t.Fatalf("PeekMin = %d,%v,%v", v, p, ok)
	}
	if h.Len() != 2 {
		t.Fatalf("Peek changed Len to %d", h.Len())
	}
}

func TestMinHeapReset(t *testing.T) {
	var h MinHeap[int]
	h.Push(1, 1)
	h.Push(2, 2)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	h.Push(9, 9)
	if v, _ := h.PopMin(); v != 9 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestMinHeapRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var h MinHeap[float64]
		n := rng.Intn(200)
		prios := make([]float64, n)
		for i := range prios {
			prios[i] = rng.Float64()
			h.Push(prios[i], prios[i])
		}
		sort.Float64s(prios)
		for i := 0; i < n; i++ {
			v, ok := h.PopMin()
			if !ok || v != prios[i] {
				t.Fatalf("trial %d: pop %d = %v, want %v", trial, i, v, prios[i])
			}
		}
	}
}

func TestBoundedMinSetKeepsSmallest(t *testing.T) {
	s := NewBoundedMinSet[int](3)
	for i := 10; i >= 1; i-- {
		s.Push(float64(i), i)
	}
	vals, _ := s.Drain()
	sort.Ints(vals)
	if len(vals) != 3 || vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
		t.Fatalf("Drain = %v, want [1 2 3]", vals)
	}
	if s.Len() != 0 {
		t.Fatalf("Len after Drain = %d", s.Len())
	}
}

func TestBoundedMinSetRejectsWorseWhenFull(t *testing.T) {
	s := NewBoundedMinSet[int](2)
	if !s.Push(1, 1) || !s.Push(2, 2) {
		t.Fatal("pushes below capacity rejected")
	}
	if !s.Full() {
		t.Fatal("Full = false at capacity")
	}
	if s.Push(5, 5) {
		t.Fatal("push of worse item accepted when full")
	}
	if !s.Push(0.5, 0) {
		t.Fatal("push of better item rejected when full")
	}
	if s.MaxPrio() != 1 {
		t.Fatalf("MaxPrio = %v, want 1", s.MaxPrio())
	}
}

func TestBoundedMinSetCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBoundedMinSet(0) did not panic")
		}
	}()
	NewBoundedMinSet[int](0)
}

func TestBoundedMinSetMaxPrioEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxPrio on empty set did not panic")
		}
	}()
	NewBoundedMinSet[int](1).MaxPrio()
}

func TestPropBoundedMinSetMatchesSort(t *testing.T) {
	f := func(raw []uint16, capRaw uint8) bool {
		capacity := int(capRaw)%16 + 1
		s := NewBoundedMinSet[uint16](capacity)
		for _, v := range raw {
			s.Push(float64(v), v)
		}
		got, _ := s.Drain()
		sorted := append([]uint16(nil), raw...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		keep := len(sorted)
		if keep > capacity {
			keep = capacity
		}
		if len(got) != keep {
			return false
		}
		// Multiset equality on the kept prefix.
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i := 0; i < keep; i++ {
			if got[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMinHeapIsSorted(t *testing.T) {
	f := func(raw []int16) bool {
		var h MinHeap[int16]
		for _, v := range raw {
			h.Push(float64(v), v)
		}
		prev := float64(-1 << 30)
		for h.Len() > 0 {
			v, _ := h.PopMin()
			if float64(v) < prev {
				return false
			}
			prev = float64(v)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
