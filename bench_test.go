package treesketch

import (
	"math"
	"testing"

	"treesketch/internal/datagen"
	"treesketch/internal/esd"
	"treesketch/internal/eval"
	"treesketch/internal/exp"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xsketch"
)

// Experiment benchmarks: one per table and figure of the paper's Section 6
// (see DESIGN.md §3 for the index). They run the exp harness at a reduced
// scale so `go test -bench=.` completes in minutes; use cmd/tsexp for
// larger runs and cmd/tsbench for the standardized regression grid.
//
// Each benchmark reports a domain rate alongside ns/op: elems/s for
// construction, queries/s for evaluation, mre% / esd for accuracy. The
// ones that synthesize large documents skip themselves under -short.

// skipLarge skips document-heavy benchmarks under `go test -short -bench`.
func skipLarge(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping large-dataset benchmark in -short mode")
	}
}

func benchConfig() exp.Config {
	return exp.Config{
		TXScale:      5000,
		LargeScale:   10000,
		WorkloadSize: 15,
		BudgetsKB:    []int{3, 8},
		XSWorkload:   8,
		Seed:         1,
	}
}

func BenchmarkTable1DatasetCharacteristics(b *testing.B) {
	skipLarge(b)
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchConfig())
		rows := r.Table1()
		if len(rows) != 7 {
			b.Fatal("bad row count")
		}
	}
}

func BenchmarkTable2WorkloadCharacteristics(b *testing.B) {
	skipLarge(b)
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchConfig())
		rows := r.Table2()
		if len(rows) != 7 {
			b.Fatal("bad row count")
		}
	}
}

func BenchmarkTable3ConstructionTimes(b *testing.B) {
	skipLarge(b)
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchConfig())
		rows := r.Table3()
		if len(rows) != 3 {
			b.Fatal("bad row count")
		}
	}
}

func BenchmarkFig11aApproxAnswersXMark(b *testing.B) {
	benchFig11(b, "XMark-TX")
}

func BenchmarkFig11bApproxAnswersIMDB(b *testing.B) {
	benchFig11(b, "IMDB-TX")
}

func BenchmarkFig11cApproxAnswersSProt(b *testing.B) {
	benchFig11(b, "SProt-TX")
}

func benchFig11(b *testing.B, name string) {
	skipLarge(b)
	var esdAvg float64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchConfig())
		c := r.Figure11(name)
		if len(c.Points) == 0 {
			b.Fatal("no points")
		}
		esdAvg = curveMean(c)
	}
	b.ReportMetric(esdAvg, "esd")
}

func BenchmarkFig12aSelectivityXMark(b *testing.B) {
	benchFig12(b, "XMark-TX")
}

func BenchmarkFig12bSelectivitySProt(b *testing.B) {
	benchFig12(b, "SProt-TX")
}

func benchFig12(b *testing.B, name string) {
	skipLarge(b)
	var mre float64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchConfig())
		c := r.Figure12(name)
		if len(c.Points) == 0 {
			b.Fatal("no points")
		}
		mre = curveMean(c)
	}
	b.ReportMetric(mre, "mre%")
}

func BenchmarkFig13LargeDatasets(b *testing.B) {
	skipLarge(b)
	var mre float64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.LargeScale = 8000
		r := exp.NewRunner(cfg)
		curves := r.Figure13()
		if len(curves) != 4 {
			b.Fatal("bad curve count")
		}
		var sum float64
		for _, c := range curves {
			sum += curveMean(c)
		}
		mre = sum / float64(len(curves))
	}
	b.ReportMetric(mre, "mre%")
}

// curveMean averages a curve's TreeSketch metric over its budget points,
// ignoring empty (NaN) cells.
func curveMean(c exp.Curve) float64 {
	var sum float64
	n := 0
	for _, p := range c.Points {
		if !math.IsNaN(p.TreeSketch) {
			sum += p.TreeSketch
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Micro-benchmarks of the pipeline stages.

func benchDoc(b *testing.B, n int) (*Document, *StableSummary) {
	b.Helper()
	doc := datagen.Generate(datagen.XMark, n, 1)
	return doc, stable.Build(doc)
}

func BenchmarkBuildStable(b *testing.B) {
	skipLarge(b)
	doc := datagen.Generate(datagen.XMark, 50000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := stable.Build(doc)
		if st.NumNodes() == 0 {
			b.Fatal("empty")
		}
	}
	b.ReportMetric(float64(b.N)*float64(doc.Size())/b.Elapsed().Seconds(), "elems/s")
}

func BenchmarkTSBuildCompression(b *testing.B) {
	skipLarge(b)
	doc, st := benchDoc(b, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 10 << 10})
		if sk.NumNodes() == 0 {
			b.Fatal("empty")
		}
	}
	b.ReportMetric(float64(b.N)*float64(doc.Size())/b.Elapsed().Seconds(), "elems/s")
}

func BenchmarkXSketchBuild(b *testing.B) {
	skipLarge(b)
	doc, st := benchDoc(b, 20000)
	ix := eval.NewIndex(doc)
	qs := query.Generate(st, 10, query.GenOptions{Seed: 3})
	sample := make([]xsketch.SampleQuery, 0, len(qs))
	for _, q := range qs {
		sample = append(sample, xsketch.SampleQuery{Q: q, Truth: eval.Exact(ix, q).Tuples})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xs, _ := xsketch.Build(st, xsketch.BuildOptions{BudgetBytes: 10 << 10, Workload: sample})
		if xs.NumNodes() == 0 {
			b.Fatal("empty")
		}
	}
	b.ReportMetric(float64(b.N)*float64(doc.Size())/b.Elapsed().Seconds(), "elems/s")
}

func BenchmarkApproxEval(b *testing.B) {
	skipLarge(b)
	_, st := benchDoc(b, 50000)
	sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 20 << 10})
	q := query.MustParse("//person[//address]{//watches{//watch?},//phone?}")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := eval.Approx(sk, q, eval.Options{})
		if r == nil {
			b.Fatal("nil result")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkExactEval(b *testing.B) {
	skipLarge(b)
	doc, _ := benchDoc(b, 50000)
	ix := eval.NewIndex(doc)
	q := query.MustParse("//person[//address]{//watches{//watch?},//phone?}")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := eval.Exact(ix, q)
		if r == nil {
			b.Fatal("nil result")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkSelectivityEstimate(b *testing.B) {
	skipLarge(b)
	doc, st := benchDoc(b, 50000)
	sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 20 << 10})
	q := query.MustParse("//open_auction{//bidder}")
	truth := eval.Exact(eval.NewIndex(doc), q).Tuples
	var est float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est = eval.Approx(sk, q, eval.Options{}).Selectivity()
		if est < 0 {
			b.Fatal("negative")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(100*eval.RelativeError(truth, est, 1), "mre%")
}

func BenchmarkESDDistance(b *testing.B) {
	skipLarge(b)
	doc, st := benchDoc(b, 20000)
	ix := eval.NewIndex(doc)
	sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 10 << 10})
	q := query.MustParse("//item{//mail?,//payment?}")
	truth := eval.Exact(ix, q).ESDGraph()
	approx := eval.Approx(sk, q, eval.Options{}).ESDGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := esd.Distance(truth, approx); d < 0 {
			b.Fatal("negative distance")
		}
	}
}

func BenchmarkSketchExpand(b *testing.B) {
	_, st := benchDoc(b, 10000)
	sk := sketch.FromStable(st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Expand(1 << 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseXML(b *testing.B) {
	skipLarge(b)
	doc := datagen.Generate(datagen.DBLP, 20000, 1)
	var sb []byte
	{
		var buf = &writerBuf{}
		doc.Write(buf)
		sb = buf.b
	}
	b.SetBytes(int64(len(sb)))
	b.ReportAllocs()
	b.ResetTimer()
	var elems float64
	for i := 0; i < b.N; i++ {
		t, err := ParseXMLString(string(sb))
		if err != nil || t.Size() == 0 {
			b.Fatal(err)
		}
		elems = float64(t.Size())
	}
	b.ReportMetric(float64(b.N)*elems/b.Elapsed().Seconds(), "elems/s")
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
